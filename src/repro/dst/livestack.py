"""DST over the *live* production stack: seeded chaos in virtual time.

This module is the payoff of the runtime seam
(:mod:`repro.core.runtime`): it runs the **identical** production code —
:class:`~repro.live.kv.KVServer` with sharding, the redirect-following
:class:`~repro.live.client.AsyncKVClient`, the chaos
:class:`~repro.chaos.nemesis.Nemesis` and the recorded workload — inside
a :class:`~repro.core.runtime.SimRuntime`, where every socket is an
in-memory stream and every clock is virtual.  A 10-second fault campaign
executes in tens of milliseconds, and — crucially — the *entire*
execution is a pure function of the scenario: the same
:class:`LiveScenario` always produces the same histories, the same
traces, the same commit orders and the same checker verdict, byte for
byte.  That turns every live-stack bug into a replayable regression
seed, exactly as :mod:`repro.dst.scenario` already does for the bare
algorithm nodes.

The shape mirrors ``python -m repro chaos``: boot a cluster, run a
recorded client workload while the nemesis executes a seeded fault plan
(kills, partitions, drops, delays, clock skew), heal, let the cluster
converge, read everything back, then hand the recorded history to the
Wing & Gill linearizability checker as the oracle.

Use :func:`explore_live` to sweep seeded scenarios (``python -m repro
explore --stack live``), :func:`shrink_live` to greedily minimize a
failing one, and :func:`run_live_scenario` to replay a corpus case.
"""

from __future__ import annotations

import hashlib
import tempfile
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Tuple

from repro.chaos.checker import check_history
from repro.chaos.history import History
from repro.chaos.nemesis import (
    DEFAULT_KINDS,
    DURABILITY_KINDS,
    FAULT_KINDS,
    FaultEvent,
    FaultPlan,
    Nemesis,
)
from repro.chaos.workload import close_clients, make_clients, run_workload
from repro.core.runtime import SimRuntime
from repro.dst.scenario import (
    ERROR,
    OK,
    UNDECIDED,
    VIOLATION,
    ScenarioOutcome,
    ViolationRecord,
)
from repro.live.harness import LiveKVCluster

#: Campaign timings (same as ``python -m repro chaos``): elections
#: resolve in about a virtual second, so short campaigns still see
#: several leadership changes.
SIM_TIMINGS = dict(election_timeout=(0.3, 0.6), heartbeat_interval=0.06)

#: The fault mix explored by default: every kind that needs neither a
#: data directory nor wall-clock side effects.  Durability kinds
#: (power failures, torn tails) join in when the scenario carries a
#: ``lost-ack`` bug or schedules them explicitly.
LIVE_EXPLORE_KINDS = DEFAULT_KINDS + (
    "drop",
    "delay",
    "timeout-skew",
    "clock-skew",
)

#: Injectable bugs a scenario may carry, mapping to the same flags the
#: chaos CLI exposes (empty string = correct cluster).
LIVE_BUGS = ("", "stale-reads", "unbounded-lease", "lost-ack")

#: Virtual-seconds safety cap multiplier for one campaign run.
_RUN_TIMEOUT_SLACK = 90.0


@dataclass(frozen=True)
class LiveScenario:
    """One fully-specified, JSON-serializable live-stack schedule.

    ``faults`` is the *explicit* event list (not a generator seed), so a
    shrunk scenario — with events deleted — round-trips through the
    corpus unchanged.  ``seed`` still drives everything else: election
    randomness, transport jitter, the workload op mix.
    """

    n: int = 3
    shards: int = 2
    seed: int = 0
    engine: str = "raft"
    read_tier: str = "safe"
    inject_bug: str = ""
    duration: float = 6.0
    clients: int = 3
    readonly_clients: int = 1
    key_space: int = 3
    read_fraction: float = 0.5
    op_pause: float = 0.02
    grace: float = 1.5
    faults: Tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        if self.inject_bug not in LIVE_BUGS:
            raise ValueError(
                f"unknown inject_bug {self.inject_bug!r} "
                f"(choose from {LIVE_BUGS})"
            )
        for event in self.faults:
            if event.kind not in FAULT_KINDS:
                raise ValueError(f"unknown fault kind {event.kind!r}")

    @property
    def needs_disk(self) -> bool:
        """Whether this run requires per-node data directories."""
        return self.inject_bug == "lost-ack" or any(
            e.kind in DURABILITY_KINDS for e in self.faults
        )

    def effective_read_tier(self) -> str:
        if self.inject_bug == "unbounded-lease" and self.read_tier == "safe":
            return "lease"  # the bug needs a lease to mis-bound
        return self.read_tier

    def to_dict(self) -> Dict[str, Any]:
        return {
            "stack": "live",
            "n": self.n,
            "shards": self.shards,
            "seed": self.seed,
            "engine": self.engine,
            "read_tier": self.read_tier,
            "inject_bug": self.inject_bug,
            "duration": self.duration,
            "clients": self.clients,
            "readonly_clients": self.readonly_clients,
            "key_space": self.key_space,
            "read_fraction": self.read_fraction,
            "op_pause": self.op_pause,
            "grace": self.grace,
            "faults": [
                {
                    "at": e.at,
                    "kind": e.kind,
                    "args": [[name, value] for name, value in e.args],
                }
                for e in self.faults
            ],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "LiveScenario":
        faults = tuple(
            FaultEvent(
                at=f["at"],
                kind=f["kind"],
                args=tuple((name, value) for name, value in f.get("args", [])),
            )
            for f in data.get("faults", [])
        )
        return cls(
            n=data["n"],
            shards=data.get("shards", 1),
            seed=data.get("seed", 0),
            engine=data.get("engine", "raft"),
            read_tier=data.get("read_tier", "safe"),
            inject_bug=data.get("inject_bug", ""),
            duration=data.get("duration", 6.0),
            clients=data.get("clients", 3),
            readonly_clients=data.get("readonly_clients", 1),
            key_space=data.get("key_space", 3),
            read_fraction=data.get("read_fraction", 0.5),
            op_pause=data.get("op_pause", 0.02),
            grace=data.get("grace", 1.5),
            faults=faults,
        )


@dataclass
class LiveRunResult:
    """Everything one simulated campaign produced.

    ``fingerprint`` hashes the client history, every node's applied
    (commit) order, the nemesis action log and the checker verdict —
    two runs of the same scenario must produce the same fingerprint,
    which is the determinism test's single assertion.
    """

    outcome: ScenarioOutcome
    history_jsonl: str = ""
    trace_text: str = ""
    nemesis_log: List[Tuple[float, str, str]] = field(default_factory=list)
    checker_summary: str = ""
    stats: Dict[str, int] = field(default_factory=dict)
    fingerprint: str = ""


def run_live(scenario: LiveScenario) -> LiveRunResult:
    """Run one scenario under a fresh :class:`SimRuntime`; deterministic."""
    rt = SimRuntime()
    cap = scenario.duration + scenario.grace + _RUN_TIMEOUT_SLACK
    try:
        try:
            result = rt.run(_campaign(rt, scenario), timeout=cap)
        except Exception as exc:  # harness failure, not a verdict
            return LiveRunResult(
                outcome=ScenarioOutcome(
                    status=ERROR,
                    violation=ViolationRecord(
                        "error", f"{type(exc).__name__}: {exc}"
                    ),
                )
            )
    finally:
        rt.close()
    return result


def run_live_scenario(scenario: LiveScenario) -> ScenarioOutcome:
    """Corpus-facing entry point: scenario in, outcome out."""
    return run_live(scenario).outcome


async def _campaign(rt: SimRuntime, scenario: LiveScenario) -> LiveRunResult:
    tmp_dir: Optional[tempfile.TemporaryDirectory] = None
    data_dir: Optional[str] = None
    if scenario.needs_disk:
        tmp_dir = tempfile.TemporaryDirectory(prefix="repro-dst-live-")
        data_dir = tmp_dir.name
    cluster = LiveKVCluster(
        scenario.n,
        seed=scenario.seed,
        shards=scenario.shards,
        engine=scenario.engine,
        unsafe_lin_reads=(scenario.inject_bug == "stale-reads"),
        lost_ack_bug=(scenario.inject_bug == "lost-ack"),
        data_dir=data_dir,
        read_tier=scenario.effective_read_tier(),
        drift_bound=(
            0.0 if scenario.inject_bug == "unbounded-lease" else 0.03
        ),
        runtime=rt,
        **SIM_TIMINGS,
    )
    history = History(runtime=rt)
    clients = make_clients(
        cluster.cluster,
        history,
        scenario.clients,
        shards=scenario.shards,
        deterministic_ids=True,
    )
    plan = FaultPlan(scenario.faults, seed=scenario.seed)
    nemesis = Nemesis(cluster, plan)
    stats: Dict[str, int] = {}
    try:
        await cluster.start()
        await cluster.wait_for_all_leaders(30.0)
        workload = rt.spawn(
            run_workload(
                clients,
                duration=scenario.duration,
                seed=scenario.seed,
                key_space=scenario.key_space,
                read_fraction=scenario.read_fraction,
                readonly_clients=scenario.readonly_clients,
                pause=scenario.op_pause,
            )
        )
        await nemesis.run()
        stats = await workload
        # Heal, revive, and give the converged cluster a read-only grace
        # pass so stale state still visible anywhere gets observed.
        await nemesis.apply(FaultEvent(0.0, "heal"))
        await nemesis.apply(FaultEvent(0.0, "restart"))
        await cluster.wait_for_all_leaders(30.0)
        if scenario.grace > 0:
            await run_workload(
                clients,
                duration=scenario.grace,
                seed=scenario.seed + 1,
                key_space=scenario.key_space,
                read_fraction=1.0,
                readonly_clients=len(clients),
                pause=scenario.op_pause,
            )
    finally:
        await close_clients(clients)
        await cluster.stop()
        if tmp_dir is not None:
            tmp_dir.cleanup()

    # Generous wall-clock budget: simulated histories are small, and a
    # budget-flipped verdict would break replay determinism.
    report = check_history(history, time_budget=60.0)
    trace_text = _trace_text(cluster)
    history_jsonl = history.to_jsonl()
    nemesis_log = [(a.at, a.kind, a.detail) for a in nemesis.log]
    outcome = _verdict(report, history)
    summary = report.summary()
    fingerprint = _fingerprint(
        history_jsonl, trace_text, nemesis_log, outcome
    )
    return LiveRunResult(
        outcome=outcome,
        history_jsonl=history_jsonl,
        trace_text=trace_text,
        nemesis_log=nemesis_log,
        checker_summary=summary,
        stats=stats,
        fingerprint=fingerprint,
    )


def _verdict(report, history: History) -> ScenarioOutcome:
    if report.ok is True:
        return ScenarioOutcome(
            status=OK, events=len(history), stop_reason="linearizable"
        )
    if report.ok is None:
        return ScenarioOutcome(
            status=UNDECIDED,
            events=len(history),
            stop_reason="checker budget exhausted",
        )
    worst = report.violations[0]
    event_index = -1
    if worst.witness:
        last = worst.witness[-1]
        for i, op in enumerate(history.ops):
            if op is last:
                event_index = i
                break
    return ScenarioOutcome(
        status=VIOLATION,
        violation=ViolationRecord(
            kind="linearizability",
            message=f"key {worst.key!r}: {worst.reason}",
            event_index=event_index,
        ),
        events=len(history),
    )


def _trace_text(cluster: LiveKVCluster) -> str:
    """A canonical, deterministic dump of every node's merged trace."""
    lines = []
    for event in cluster.merged_trace().events:
        lines.append(
            f"{event.time:.6f} {event.kind} {event.pid} {event.detail!r}"
        )
    return "\n".join(lines)


def _fingerprint(
    history_jsonl: str,
    trace_text: str,
    nemesis_log: List[Tuple[float, str, str]],
    outcome: ScenarioOutcome,
) -> str:
    digest = hashlib.sha256()
    digest.update(history_jsonl.encode())
    digest.update(trace_text.encode())
    digest.update(repr(nemesis_log).encode())
    digest.update(outcome.status.encode())
    if outcome.violation is not None:
        digest.update(repr(
            (outcome.violation.kind, outcome.violation.message,
             outcome.violation.event_index)
        ).encode())
    return digest.hexdigest()


# ---------------------------------------------------------------------------
# Exploration
# ---------------------------------------------------------------------------


def generate_live_scenarios(
    count: int,
    meta_seed: int,
    *,
    base: Optional[LiveScenario] = None,
    kinds: Tuple[str, ...] = LIVE_EXPLORE_KINDS,
    fault_period: float = 1.5,
) -> List[LiveScenario]:
    """``count`` seeded scenarios derived deterministically from ``meta_seed``.

    Each draws a fresh run seed and a fresh random fault campaign over
    ``kinds``; everything else comes from ``base`` (cluster size, tier,
    injected bug, workload shape).
    """
    import random as _random

    rng = _random.Random(meta_seed)
    template = base if base is not None else LiveScenario()
    scenarios = []
    for _ in range(count):
        seed = rng.randrange(2**31)
        plan = FaultPlan.random_campaign(
            seed,
            duration=template.duration,
            period=fault_period,
            kinds=kinds,
        )
        scenarios.append(replace(template, seed=seed, faults=plan.events))
    return scenarios


@dataclass
class LiveExplorationReport:
    """What a live-stack sweep found."""

    schedules: int = 0
    ok: int = 0
    undecided: int = 0
    errors: int = 0
    failures: List[Tuple[LiveScenario, ViolationRecord]] = field(
        default_factory=list
    )
    #: One fingerprint per schedule, in run order.  Two sweeps with the
    #: same parameters must produce the identical list.
    fingerprints: List[str] = field(default_factory=list)

    @property
    def violations(self) -> int:
        return len(self.failures)

    def digest(self) -> str:
        """One hash over the whole sweep (histories, traces, verdicts)."""
        h = hashlib.sha256()
        for fingerprint in self.fingerprints:
            h.update(fingerprint.encode())
        return h.hexdigest()

    def summary(self) -> str:
        return (
            f"explored {self.schedules} live schedule(s): {self.ok} ok, "
            f"{self.violations} violation(s), {self.undecided} undecided, "
            f"{self.errors} error(s)"
        )


def explore_live(
    schedules: int,
    meta_seed: int,
    *,
    base: Optional[LiveScenario] = None,
    kinds: Tuple[str, ...] = LIVE_EXPLORE_KINDS,
    fault_period: float = 1.5,
    stop_after: Optional[int] = None,
    progress: Any = None,
    trace_sink: Any = None,
) -> LiveExplorationReport:
    """Run ``schedules`` seeded live campaigns; collect every violation.

    Runs are sequential — each owns a fresh simulated world — and the
    report is a deterministic function of ``(meta_seed, parameters)``.
    ``progress`` (if given) is called after each run with
    ``(index, scenario, outcome)``; ``trace_sink`` with
    ``(index, scenario, result)`` — the full :class:`LiveRunResult`,
    for callers that want the trace/history artifacts.
    """
    report = LiveExplorationReport()
    for index, scenario in enumerate(
        generate_live_scenarios(
            schedules, meta_seed, base=base, kinds=kinds,
            fault_period=fault_period,
        )
    ):
        result = run_live(scenario)
        outcome = result.outcome
        report.schedules += 1
        report.fingerprints.append(result.fingerprint)
        if trace_sink is not None:
            trace_sink(index, scenario, result)
        if outcome.status == OK:
            report.ok += 1
        elif outcome.status == VIOLATION:
            assert outcome.violation is not None
            report.failures.append((scenario, outcome.violation))
        elif outcome.status == UNDECIDED:
            report.undecided += 1
        else:
            report.errors += 1
        if progress is not None:
            progress(index, scenario, outcome)
        if stop_after is not None and report.violations >= stop_after:
            break
    return report


# ---------------------------------------------------------------------------
# Shrinking
# ---------------------------------------------------------------------------


def shrink_live(
    scenario: LiveScenario,
    violation: ViolationRecord,
    *,
    max_runs: int = 60,
    progress: Any = None,
) -> Tuple[LiveScenario, ViolationRecord]:
    """Greedily minimize a failing scenario, preserving the violation kind.

    Passes, repeated until a fixpoint or the run budget is spent:
    drop one fault event at a time; drop trailing faults and truncate
    the duration to just past the last survivor; reduce writer clients.
    Each candidate is re-run; a shrink is kept only if it still fails
    with the same violation kind.
    """
    runs = 0

    def still_fails(candidate: LiveScenario) -> Optional[ViolationRecord]:
        nonlocal runs
        if runs >= max_runs:
            return None
        runs += 1
        outcome = run_live_scenario(candidate)
        if progress is not None:
            progress(runs, candidate, outcome)
        if (
            outcome.status == VIOLATION
            and outcome.violation is not None
            and outcome.violation.kind == violation.kind
        ):
            return outcome.violation
        return None

    best, best_violation = scenario, violation
    improved = True
    while improved and runs < max_runs:
        improved = False
        # Pass 1: drop individual fault events.
        for i in range(len(best.faults)):
            candidate = replace(
                best, faults=best.faults[:i] + best.faults[i + 1:]
            )
            verdict = still_fails(candidate)
            if verdict is not None:
                best, best_violation = candidate, verdict
                improved = True
                break
        if improved:
            continue
        # Pass 2: truncate the campaign after the last remaining fault.
        if best.faults:
            cut = best.faults[-1].at + 1.0
            if cut < best.duration:
                candidate = replace(best, duration=round(cut, 6))
                verdict = still_fails(candidate)
                if verdict is not None:
                    best, best_violation = candidate, verdict
                    improved = True
                    continue
        # Pass 3: fewer clients (never below one writer + one reader).
        if best.clients > 2:
            candidate = replace(best, clients=best.clients - 1)
            verdict = still_fails(candidate)
            if verdict is not None:
                best, best_violation = candidate, verdict
                improved = True
    return best, best_violation
