"""Tests for the probabilistic-write conciliator."""

import pytest

from repro.memory.conciliator import ProbabilisticWriteConciliator
from repro.memory.scheduler import MemoryScheduler, SharedMemoryProcess
from repro.sim.ops import Annotate


class OneShot(SharedMemoryProcess):
    def __init__(self, conciliator):
        self.conciliator = conciliator

    def run(self, api):
        value = yield from self.conciliator.invoke(api, api.init_value)
        yield Annotate("outcome", value)


def run_conciliator(init_values, seed=0, policy="random"):
    n = len(init_values)
    conciliator = ProbabilisticWriteConciliator(n)
    scheduler = MemoryScheduler(
        [OneShot(conciliator) for _ in range(n)],
        init_values=init_values,
        policy=policy,
        seed=seed,
        max_steps=500_000,
    )
    result = scheduler.run()
    return {pid: v for pid, _t, v in result.trace.annotations("outcome")}


class TestTermination:
    @pytest.mark.parametrize("seed", range(10))
    def test_every_invoker_returns(self, seed):
        outcomes = run_conciliator(["a", "b", "c", "d"], seed=seed)
        assert len(outcomes) == 4

    def test_solo_invoker_returns_own_value(self):
        outcomes = run_conciliator(["mine"])
        assert outcomes[0] == "mine"


class TestValidity:
    @pytest.mark.parametrize("seed", range(20))
    def test_output_is_some_input(self, seed):
        inits = ["a", "b", "c"]
        outcomes = run_conciliator(inits, seed=seed)
        assert all(v in inits for v in outcomes.values())


class TestProbabilisticAgreement:
    def test_agreement_frequency_bounded_away_from_zero(self):
        """Across a seed battery the all-agree fraction must comfortably
        exceed the theoretical floor (1 - 1/2n)^(n-1) ~ e^(-1/2) ~ 0.60."""
        n = 4
        agreements = 0
        trials = 60
        for seed in range(trials):
            outcomes = run_conciliator(["a", "b", "c", "d"], seed=seed)
            if len(set(outcomes.values())) == 1:
                agreements += 1
        assert agreements / trials > 0.4

    def test_unanimous_inputs_always_agree(self):
        for seed in range(10):
            outcomes = run_conciliator(["v"] * 5, seed=seed)
            assert set(outcomes.values()) == {"v"}


def test_rejects_invalid_n():
    with pytest.raises(ValueError):
        ProbabilisticWriteConciliator(0)
