"""End-to-end tests for shared-memory consensus (Aspnes' framework, E9)."""

import pytest

from repro.core.properties import (
    check_agreement,
    check_all_rounds,
    check_termination,
    check_validity,
)
from repro.memory import run_shared_memory_consensus
from repro.memory.consensus import SharedMemoryConsensus
from repro.memory.scheduler import MemoryScheduler


class TestConsensus:
    @pytest.mark.parametrize("seed", range(15))
    def test_agreement_validity_termination(self, seed):
        inits = [0, 1, 1, 0, 1]
        result = run_shared_memory_consensus(inits, seed=seed)
        check_agreement(result.decisions)
        check_validity(result.decisions, inits)
        check_termination(result.decisions, range(5))

    @pytest.mark.parametrize("n", [1, 2, 3, 6, 10])
    def test_system_sizes(self, n):
        inits = [i % 2 for i in range(n)]
        result = run_shared_memory_consensus(inits, seed=7)
        check_agreement(result.decisions)
        check_termination(result.decisions, range(n))

    def test_unanimous_decides_in_round_one(self):
        result = run_shared_memory_consensus([3, 3, 3], seed=0)
        assert result.decided_value() == 3
        rounds = check_all_rounds(result.trace, "ac")
        assert rounds == 1

    @pytest.mark.parametrize("seed", range(10))
    def test_every_round_is_ac_coherent(self, seed):
        result = run_shared_memory_consensus([0, 1, 0, 1], seed=seed)
        check_all_rounds(result.trace, "ac")

    def test_round_robin_schedule(self):
        result = run_shared_memory_consensus([0, 1, 0, 1], seed=2, policy="round_robin")
        check_agreement(result.decisions)
        check_termination(result.decisions, range(4))

    def test_adversarial_alternating_schedule(self):
        # A hostile-ish deterministic policy: always step the lowest
        # unfinished pid on even steps and the highest on odd steps.
        def policy(step, runnable, rng):
            return runnable[0] if step % 2 == 0 else runnable[-1]

        result = run_shared_memory_consensus([0, 1, 1, 0], seed=0, policy=policy)
        check_agreement(result.decisions)
        check_termination(result.decisions, range(4))

    def test_max_rounds_caps_execution(self):
        # With max_rounds=0 the process body exits immediately, undecided.
        scheduler = MemoryScheduler(
            [SharedMemoryConsensus(2, max_rounds=0) for _ in range(2)],
            init_values=[0, 1],
            seed=0,
        )
        result = scheduler.run()
        assert result.decisions == {}

    def test_wait_free_progress_under_starvation(self):
        """One process runs alone (others never scheduled): it must still
        decide — the wait-freedom of the shared-memory framework."""
        def solo_policy(step, runnable, rng):
            return 0 if 0 in runnable else runnable[0]

        result = run_shared_memory_consensus([5, 6, 7], seed=0, policy=solo_policy)
        assert result.decisions.get(0) == 5
