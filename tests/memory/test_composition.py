"""Unit tests for the shared-memory VAC-from-two-ACs composition."""

import pytest

from repro.core.confidence import COMMIT, VACILLATE
from repro.core.properties import check_vac_round
from repro.memory.composition import RegisterVacFromTwoAcs
from repro.memory.scheduler import MemoryScheduler, SharedMemoryProcess
from repro.sim.ops import Annotate


class OneShot(SharedMemoryProcess):
    def __init__(self, vac):
        self.vac = vac

    def run(self, api):
        outcome = yield from self.vac.invoke(api, api.init_value)
        yield Annotate("outcome", outcome)


def run_vac(init_values, policy="random", seed=0):
    n = len(init_values)
    vac = RegisterVacFromTwoAcs(n)
    scheduler = MemoryScheduler(
        [OneShot(vac) for _ in range(n)],
        init_values=init_values,
        policy=policy,
        seed=seed,
    )
    result = scheduler.run()
    return {pid: v for pid, _t, v in result.trace.annotations("outcome")}


def test_unanimous_inputs_commit():
    outcomes = run_vac(["v"] * 4)
    assert all(o == (COMMIT, "v") for o in outcomes.values())


def test_solo_run_commits():
    # Sequential schedule: the first process runs both stages alone.
    def sequential(step, runnable, rng):
        return runnable[0]

    outcomes = run_vac(["a", "b"], policy=sequential)
    assert outcomes[0] == (COMMIT, "a")
    assert outcomes[1][1] == "a"  # second process carries the first value


@pytest.mark.parametrize("seed", range(20))
def test_mixed_inputs_always_coherent(seed):
    outcomes = run_vac(["a", "b", "a", "b"], seed=seed)
    check_vac_round(outcomes)
    assert all(v in ("a", "b") for _c, v in outcomes.values())


def test_all_three_levels_possible():
    # Across a battery of seeds all three confidence levels should appear
    # somewhere (commit from clean runs, vacillate from contended ones).
    seen = set()
    for seed in range(60):
        for confidence, _value in run_vac(["a", "b", "a"], seed=seed).values():
            seen.add(confidence)
    assert COMMIT in seen
    assert VACILLATE in seen


def test_instances_are_namespaced():
    first = RegisterVacFromTwoAcs(2, tag="one")
    second = RegisterVacFromTwoAcs(2, tag="two")

    class TwoRounds(SharedMemoryProcess):
        def run(self, api):
            a = yield from first.invoke(api, api.init_value)
            b = yield from second.invoke(api, "fresh")
            yield Annotate("outcome", (a, b))

    scheduler = MemoryScheduler(
        [TwoRounds(), TwoRounds()], init_values=["x", "y"], seed=1
    )
    result = scheduler.run()
    for _first, second_outcome in (
        v for _p, _t, v in result.trace.annotations("outcome")
    ):
        assert second_outcome == (COMMIT, "fresh")
