"""Tests for the register-based adopt-commit object (wait-free, Gafni-style)."""

import pytest

from repro.core.confidence import ADOPT, COMMIT
from repro.core.properties import check_ac_round
from repro.memory.adopt_commit import RegisterAdoptCommit
from repro.memory.scheduler import MemoryScheduler, SharedMemoryProcess
from repro.sim.ops import Annotate


class OneShot(SharedMemoryProcess):
    def __init__(self, ac):
        self.ac = ac

    def run(self, api):
        outcome = yield from self.ac.invoke(api, api.init_value)
        yield Annotate("outcome", outcome)


def run_ac(init_values, policy="random", seed=0):
    n = len(init_values)
    ac = RegisterAdoptCommit(n)
    scheduler = MemoryScheduler(
        [OneShot(ac) for _ in range(n)],
        init_values=init_values,
        policy=policy,
        seed=seed,
    )
    result = scheduler.run()
    return {pid: v for pid, _t, v in result.trace.annotations("outcome")}


class TestConvergence:
    @pytest.mark.parametrize("n", [1, 2, 3, 5, 8])
    def test_unanimous_inputs_commit(self, n):
        outcomes = run_ac(["v"] * n)
        assert all(o == (COMMIT, "v") for o in outcomes.values())

    def test_solo_invocation_commits(self):
        outcomes = run_ac(["only"])
        assert outcomes[0] == (COMMIT, "only")


class TestCoherence:
    @pytest.mark.parametrize("seed", range(30))
    def test_random_interleavings_stay_coherent(self, seed):
        outcomes = run_ac(["a", "b", "a", "b", "a"], seed=seed)
        check_ac_round(outcomes)

    @pytest.mark.parametrize("seed", range(10))
    def test_round_robin_interleaving(self, seed):
        outcomes = run_ac(["x", "y", "x"], policy="round_robin", seed=seed)
        check_ac_round(outcomes)

    def test_sequential_schedule_first_process_commits(self):
        # Run processes strictly one after another: the first to finish
        # sees no conflict and commits; the rest must adopt its value.
        def sequential(step, runnable, rng):
            return runnable[0]

        n = 3
        ac = RegisterAdoptCommit(n)
        scheduler = MemoryScheduler(
            [OneShot(ac) for _ in range(n)],
            init_values=["first", "second", "third"],
            policy=sequential,
            seed=0,
        )
        result = scheduler.run()
        outcomes = {pid: v for pid, _t, v in result.trace.annotations("outcome")}
        assert outcomes[0] == (COMMIT, "first")
        assert outcomes[1] == (ADOPT, "first")
        assert outcomes[2] == (ADOPT, "first")

    def test_validity_outputs_are_inputs(self):
        for seed in range(20):
            inits = ["a", "b", "c", "d"]
            outcomes = run_ac(inits, seed=seed)
            assert all(v in inits for _c, v in outcomes.values())


class TestIsolation:
    def test_two_instances_do_not_interfere(self):
        class TwoRounds(SharedMemoryProcess):
            def __init__(self, ac1, ac2):
                self.ac1, self.ac2 = ac1, ac2

            def run(self, api):
                first = yield from self.ac1.invoke(api, api.init_value)
                second = yield from self.ac2.invoke(api, "fresh")
                yield Annotate("outcome", (first, second))

        ac1 = RegisterAdoptCommit(2, tag="round1")
        ac2 = RegisterAdoptCommit(2, tag="round2")
        scheduler = MemoryScheduler(
            [TwoRounds(ac1, ac2) for _ in range(2)],
            init_values=["a", "b"],
            seed=1,
        )
        result = scheduler.run()
        outcomes = {pid: v for pid, _t, v in result.trace.annotations("outcome")}
        # Second instance sees unanimous "fresh" regardless of round 1.
        for _first, second in outcomes.values():
            assert second == (COMMIT, "fresh")

    def test_rejects_invalid_n(self):
        with pytest.raises(ValueError):
            RegisterAdoptCommit(0)
