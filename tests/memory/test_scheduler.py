"""Unit tests for the shared-memory step scheduler and registers."""

import pytest

from repro.memory.scheduler import (
    MemoryScheduler,
    ReadReg,
    SharedMemoryProcess,
    WriteReg,
)
from repro.sim.ops import Annotate, Decide, Halt


class Prog(SharedMemoryProcess):
    def __init__(self, body):
        self._body = body

    def run(self, api):
        return self._body(api)


def run(bodies, **kwargs):
    return MemoryScheduler([Prog(b) for b in bodies], **kwargs).run()


class TestRegisters:
    def test_unwritten_register_reads_none(self):
        def body(api):
            value = yield ReadReg("r")
            yield Decide(value)

        result = run([body])
        assert result.decisions == {0: None}

    def test_write_then_read(self):
        def body(api):
            yield WriteReg("r", 42)
            value = yield ReadReg("r")
            yield Decide(value)

        result = run([body])
        assert result.decisions == {0: 42}
        assert result.registers == {"r": 42}

    def test_registers_shared_between_processes(self):
        def writer(api):
            yield WriteReg("shared", "w")

        def reader(api):
            while True:
                value = yield ReadReg("shared")
                if value is not None:
                    yield Decide(value)
                    return

        result = run([writer, reader])
        assert result.decisions == {1: "w"}

    def test_tuple_register_names(self):
        def body(api):
            yield WriteReg(("ns", 1, api.pid), api.pid)
            value = yield ReadReg(("ns", 1, api.pid))
            yield Decide(value)

        result = run([body, body])
        assert result.decisions == {0: 0, 1: 1}


class TestScheduling:
    def test_round_robin_is_fair_and_deterministic(self):
        order = []

        def body(api):
            for _ in range(3):
                order.append(api.pid)
                yield ReadReg("r")

        run([body, body], policy="round_robin")
        assert order == [0, 1, 0, 1, 0, 1]

    def test_random_policy_is_seed_deterministic(self):
        def body(api):
            yield WriteReg(("out", api.pid), api.rng.random())
            yield Decide(api.pid)

        first = run([body, body, body], policy="random", seed=5)
        second = run([body, body, body], policy="random", seed=5)
        assert first.registers == second.registers

    def test_custom_policy(self):
        # Starve pid 0 until pid 1 finishes.
        def policy(step, runnable, rng):
            return runnable[-1]

        order = []

        def body(api):
            order.append(api.pid)
            yield ReadReg("r")
            order.append(api.pid)

        run([body, body], policy=policy)
        assert order == [1, 1, 0, 0]

    def test_bad_policy_choice_rejected(self):
        def policy(step, runnable, rng):
            return 99

        def body(api):
            yield ReadReg("r")

        with pytest.raises(ValueError):
            run([body], policy=policy)

    def test_unknown_policy_rejected(self):
        def body(api):
            yield ReadReg("r")

        with pytest.raises(ValueError):
            run([body], policy="bogus")

    def test_max_steps_caps_livelock(self):
        def spin(api):
            while True:
                yield ReadReg("r")

        result = run([spin], max_steps=100)
        assert result.steps == 100


class TestOps:
    def test_annotate_recorded(self):
        def body(api):
            yield Annotate("mark", 1)

        result = run([body])
        assert result.trace.annotations("mark") == [(0, 1, 1)]

    def test_halt_stops(self):
        def body(api):
            yield Halt()
            yield Decide("never")

        result = run([body])
        assert result.decisions == {}

    def test_double_decide_conflict_raises(self):
        def body(api):
            yield Decide(1)
            yield Decide(2)

        with pytest.raises(RuntimeError):
            run([body])

    def test_message_ops_rejected(self):
        from repro.sim.ops import Send

        def body(api):
            yield Send(0, "x")

        with pytest.raises(RuntimeError):
            run([body])

    def test_validation(self):
        with pytest.raises(ValueError):
            MemoryScheduler([])
        with pytest.raises(ValueError):
            MemoryScheduler([Prog(lambda api: iter(()))], init_values=[1, 2])
