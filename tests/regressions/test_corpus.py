"""Replay the seed-regression corpus (``tests/regressions/corpus/*.json``).

Every corpus case is a minimized adversarial schedule the explorer caught
and the shrinker reduced — a pinned witness of a real violation.  Each
case generates two pytest cases:

* ``test_recorded_violation_reproduces`` replays the scenario and asserts
  the recorded violation kind fires again (determinism of the whole DST
  stack, end to end, from disk).
* ``test_scenario_is_still_a_counterexample`` is the *failing-then-xfail*
  shape: it asserts the scenario runs clean, which is expected to fail as
  long as the bug the case witnesses exists.  ``strict=True`` turns an
  unexpected pass into a test failure — so fixing the underlying bug
  forces whoever fixed it to delete or re-record the corpus entry.
"""

import os

import pytest

from repro.dst import LiveScenario, assert_still_fails, load_corpus, replay
from repro.dst.scenario import VIOLATION

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")

CASES = load_corpus(CORPUS_DIR)


def test_corpus_is_not_empty():
    assert CASES, f"no corpus cases found in {CORPUS_DIR}"


@pytest.mark.parametrize("case", CASES, ids=[c.name for c in CASES])
def test_recorded_violation_reproduces(case):
    outcome = assert_still_fails(case)
    assert outcome.violation is not None
    assert outcome.violation.kind == case.violation.kind
    if not isinstance(case.scenario, LiveScenario):
        # Simulator cases replay bit-for-bit: same message, same index.
        # Live-stack cases are deterministic *per interpreter* but ride
        # on asyncio scheduling internals that shift between Python
        # versions, so only the violation kind is pinned across the CI
        # matrix (the dedicated determinism tests pin byte-identity
        # within one interpreter).
        assert outcome.violation.message == case.violation.message
        assert outcome.violation.event_index == case.violation.event_index


@pytest.mark.parametrize("case", CASES, ids=[c.name for c in CASES])
@pytest.mark.xfail(
    strict=True,
    reason="corpus cases pin known-violating schedules; an unexpected pass "
    "means the witnessed bug vanished — re-record or delete the case",
)
def test_scenario_is_still_a_counterexample(case):
    outcome = replay(case)
    assert outcome.status != VIOLATION
