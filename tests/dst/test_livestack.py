"""DST over the live production stack (``repro.dst.livestack``).

The acceptance bar for live-stack DST is *byte identity*: the same
:class:`~repro.dst.livestack.LiveScenario` — a full 3-node × 2-shard
``KVServer`` cluster with real framing, redirects, batching, a seeded
nemesis and a recorded workload, all in virtual time — must replay to
the identical client history, the identical merged node trace, the
identical nemesis log and the identical checker verdict, run after run.
Everything else (shrinking, the corpus, CLI sweeps) stands on that.
"""

import json

import pytest

from repro.chaos.nemesis import FaultEvent
from repro.dst.livestack import (
    LiveScenario,
    explore_live,
    generate_live_scenarios,
    run_live,
    run_live_scenario,
)

#: Short but not trivial: two fault-heal cycles, a couple hundred ops.
SCENARIO = LiveScenario(
    n=3,
    shards=2,
    seed=42,
    duration=3.0,
    clients=3,
    op_pause=0.01,
    grace=1.0,
    faults=(
        FaultEvent(0.8, "partition-leader", (("roll", 0.31),)),
        FaultEvent(1.6, "heal"),
        FaultEvent(1.6, "restart"),
        FaultEvent(2.2, "kill-leader", (("roll", 0.77),)),
        FaultEvent(2.8, "heal"),
        FaultEvent(2.8, "restart"),
    ),
)


class TestByteIdentity:
    def test_same_scenario_replays_byte_identical(self):
        """The tentpole assertion: every artifact of a run — history,
        trace, nemesis log, verdict, and the fingerprint over them all —
        is a pure function of the scenario."""
        a = run_live(SCENARIO)
        b = run_live(SCENARIO)
        assert a.outcome.status == "ok", a.outcome
        assert a.history_jsonl == b.history_jsonl
        assert a.trace_text == b.trace_text
        assert a.nemesis_log == b.nemesis_log
        assert a.stats == b.stats
        assert a.fingerprint == b.fingerprint

    def test_run_produced_real_work(self):
        """Guard against vacuous determinism: the campaign must commit
        operations, survive its faults, and record nemesis actions."""
        result = run_live(SCENARIO)
        assert result.outcome.status == "ok"
        assert result.outcome.events > 100
        assert result.stats["ok"] > 50
        kinds = [kind for _, kind, _ in result.nemesis_log]
        assert "partition-leader" in kinds and "kill-leader" in kinds
        # The merged node trace carries the consensus-level events too:
        # leadership changes and applied batches, on the same time axis.
        assert "'leader'" in result.trace_text
        assert "'applied'" in result.trace_text

    def test_different_seeds_diverge(self):
        """The fingerprint must actually discriminate executions."""
        from dataclasses import replace

        a = run_live(SCENARIO)
        b = run_live(replace(SCENARIO, seed=43))
        assert a.fingerprint != b.fingerprint

    def test_explore_sweep_digest_is_deterministic(self):
        base = LiveScenario(duration=2.0, clients=2, grace=0.8)
        sweeps = [
            explore_live(2, 9, base=base, fault_period=1.0) for _ in range(2)
        ]
        assert sweeps[0].digest() == sweeps[1].digest()
        assert sweeps[0].fingerprints == sweeps[1].fingerprints
        assert sweeps[0].schedules == 2


class TestScenarioSerialization:
    def test_round_trip_through_json(self):
        data = json.loads(json.dumps(SCENARIO.to_dict()))
        assert data["stack"] == "live"
        restored = LiveScenario.from_dict(data)
        assert restored == SCENARIO  # FaultEvent args survive list->tuple

    def test_generated_scenarios_are_deterministic(self):
        a = generate_live_scenarios(3, meta_seed=5)
        b = generate_live_scenarios(3, meta_seed=5)
        assert a == b
        assert len({s.seed for s in a}) == 3

    def test_unknown_bug_rejected(self):
        with pytest.raises(ValueError):
            LiveScenario(inject_bug="nonsense")

    def test_unknown_fault_kind_rejected(self):
        with pytest.raises(ValueError):
            LiveScenario(faults=(FaultEvent(1.0, "meteor-strike"),))


class TestInjectedBugCanary:
    def test_stale_reads_bug_violates(self):
        """A deliberately broken cluster must produce a violation —
        the oracle path from live history to checker verdict works."""
        scenario = LiveScenario(
            n=3,
            shards=1,
            seed=13,
            duration=4.0,
            clients=3,
            op_pause=0.005,
            inject_bug="stale-reads",
            faults=(
                FaultEvent(1.0, "partition-leader", (("roll", 0.2),)),
                FaultEvent(3.0, "heal"),
                FaultEvent(3.0, "restart"),
            ),
        )
        outcome = run_live_scenario(scenario)
        assert outcome.status == "violation", outcome
        assert outcome.violation.kind == "linearizability"
        assert outcome.violation.event_index >= 0
