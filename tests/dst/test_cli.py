"""Tests for the DST subcommands of ``python -m repro``."""

import json
import os

from repro.__main__ import main


def run_cli(*argv):
    return main(list(argv))


class TestExplore:
    def test_quiet_sweep(self, capsys):
        assert run_cli("explore", "ben-or", "--schedules", "15", "--quiet") == 0
        out = capsys.readouterr().out
        assert "ben-or:" in out and "'ok':" in out

    def test_summary_tables(self, capsys):
        assert run_cli("explore", "ben-or", "--schedules", "10") == 0
        out = capsys.readouterr().out
        assert "swept 10 schedules of 'ben-or'" in out
        assert "outcome" in out and "coverage" in out

    def test_broken_variant_reports_violation_but_exits_zero(self, capsys):
        # expect_broken algorithms are self-test targets: finding their
        # violation is success, not failure.
        assert (
            run_cli(
                "explore",
                "ben-or-broken-coherence",
                "--schedules",
                "120",
                "--stop-after",
                "1",
                "--quiet",
            )
            == 0
        )
        assert "'violation': 1" in capsys.readouterr().out

    def test_shrink_and_save_corpus(self, capsys, tmp_path):
        corpus_dir = str(tmp_path / "corpus")
        assert (
            run_cli(
                "explore",
                "ben-or-broken-coherence",
                "--schedules",
                "120",
                "--stop-after",
                "1",
                "--shrink",
                "--save-corpus",
                corpus_dir,
                "--quiet",
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "shrunk to" in out and "saved corpus case" in out
        files = os.listdir(corpus_dir)
        assert len(files) == 1 and files[0].endswith(".json")
        with open(os.path.join(corpus_dir, files[0])) as handle:
            data = json.load(handle)
        assert data["violation"]["kind"] == "vac-coherence"

    def test_bad_n_range_rejected(self, capsys):
        assert run_cli("explore", "ben-or", "--n-range", "wide") == 2
        assert "bad --n-range" in capsys.readouterr().err


class TestReplay:
    def test_replay_corpus_case(self, capsys, tmp_path):
        corpus_dir = str(tmp_path / "corpus")
        run_cli(
            "explore",
            "ben-or-broken-coherence",
            "--schedules",
            "120",
            "--stop-after",
            "1",
            "--save-corpus",
            corpus_dir,
            "--quiet",
        )
        capsys.readouterr()
        case = os.path.join(corpus_dir, os.listdir(corpus_dir)[0])
        assert run_cli("replay", case) == 0
        assert "recorded violation reproduces" in capsys.readouterr().out

    def test_replay_bare_scenario(self, capsys, tmp_path):
        path = tmp_path / "scenario.json"
        path.write_text(
            json.dumps(
                {
                    "algorithm": "ben-or",
                    "n": 4,
                    "t": 1,
                    "init_values": [1, 1, 1, 1],
                    "seed": 0,
                }
            )
        )
        assert run_cli("replay", str(path)) == 0
        assert "status=ok" in capsys.readouterr().out

    def test_replay_flags_stale_case(self, capsys, tmp_path):
        # A case whose recorded violation no longer reproduces (here: a
        # healthy scenario stored as if it violated) must exit non-zero.
        path = tmp_path / "stale.json"
        path.write_text(
            json.dumps(
                {
                    "format": 1,
                    "name": "stale",
                    "notes": "",
                    "scenario": {
                        "algorithm": "ben-or",
                        "n": 4,
                        "t": 1,
                        "init_values": [1, 1, 1, 1],
                        "seed": 0,
                    },
                    "violation": {
                        "kind": "vac-coherence",
                        "message": "made up",
                        "event_index": 1,
                    },
                }
            )
        )
        assert run_cli("replay", str(path)) == 1
        assert "did NOT reproduce" in capsys.readouterr().out


def test_legacy_algorithm_commands_still_work(capsys):
    assert run_cli("ben-or", "--n", "5", "--seed", "7", "--quiet") == 0
    assert "processes decided" in capsys.readouterr().out
