"""Shrinker tests: minimization preserves the violation, deterministically.

Uses the deliberately broken Ben-Or variant as the bug source — the same
acceptance path the corpus workflow exercises: explore → shrink → the
minimized scenario replays to the *identical* violation.
"""

import pytest

from repro.dst import ShrinkResult, explore, run_scenario, shrink
from repro.dst.scenario import VIOLATION, Scenario, mutate_scenario


@pytest.fixture(scope="module")
def found():
    """One (scenario, violation) pair caught by a bounded sweep."""
    report = explore(
        "ben-or-broken-coherence",
        schedules=200,
        meta_seed=0,
        stop_after_violations=1,
    )
    assert report.violations, "sweep failed to catch the broken variant"
    return report.violations[0]


def test_shrink_preserves_the_violation_kind(found):
    scenario, violation = found
    result = shrink(scenario, violation)
    assert isinstance(result, ShrinkResult)
    assert result.violation.kind == violation.kind == "vac-coherence"
    assert result.attempts <= 400


def test_shrink_never_grows_the_scenario(found):
    scenario, violation = found
    result = shrink(scenario, violation)
    small = result.scenario
    assert small.n <= scenario.n
    assert len(small.crashes) <= len(scenario.crashes)
    assert len(small.network.partitions) <= len(scenario.network.partitions)
    if scenario.max_rounds is not None:
        assert small.max_rounds is not None
        assert small.max_rounds <= scenario.max_rounds


def test_minimized_scenario_replays_the_identical_violation(found):
    scenario, violation = found
    result = shrink(scenario, violation)
    # Determinism across replays — including a JSON round trip, which is
    # exactly what the regression corpus stores on disk.
    first = run_scenario(result.scenario)
    second = run_scenario(Scenario.from_json(result.scenario.to_json()))
    assert first.status == second.status == VIOLATION
    assert first.violation == second.violation
    assert first.violation.kind == result.violation.kind
    assert first.violation.message == result.violation.message


def test_shrink_rejects_non_violating_input():
    healthy = Scenario(
        algorithm="ben-or", n=4, t=1, init_values=(1, 1, 1, 1), seed=0
    )
    with pytest.raises(ValueError, match="does not reproduce"):
        shrink(healthy)


def test_shrink_respects_the_attempt_cap(found):
    scenario, violation = found
    # Give the shrinker more failure clauses to chew through, then cap it.
    bloated = mutate_scenario(scenario, max_rounds=59)
    if run_scenario(bloated).status != VIOLATION:
        bloated = scenario
    result = shrink(bloated, max_attempts=5)
    assert result.attempts <= 5
