"""Scenario spec tests: serialization contract and outcome classification."""

import random

import pytest

from repro.dst import (
    CrashSpec,
    DelaySpec,
    NetworkSpec,
    PartitionSpec,
    Scenario,
    get_algorithm,
    random_scenario,
    run_scenario,
)
from repro.dst.scenario import OK, UNDECIDED
from repro.sim.network import (
    ConstantDelay,
    ExponentialDelay,
    SkewedDelay,
    UniformDelay,
)


def _full_scenario():
    return Scenario(
        algorithm="ben-or",
        n=5,
        t=2,
        init_values=(0, 1, 0, 1, 1),
        seed=99,
        network=NetworkSpec(
            delay=DelaySpec("skewed", (0.5, 1.5), slow_pids=(1, 3), factor=4.0),
            drop_rate=0.0,
            partitions=(PartitionSpec(2.0, 8.0, ((0, 1), (2, 3, 4))),),
            fifo=True,
        ),
        crashes=(
            CrashSpec(0, after_sends=4),
            CrashSpec(2, at_time=5.0, restart_at=12.0),
        ),
        max_rounds=30,
    )


def test_json_round_trip_preserves_every_field():
    scenario = _full_scenario()
    assert Scenario.from_json(scenario.to_json()) == scenario


def test_json_round_trip_sync_scenario():
    scenario = Scenario(
        algorithm="phase-king",
        n=7,
        t=2,
        init_values=(0, 1, 0, 1, 1, 0, 1),
        seed=3,
        byzantine=((0, "equivocate"), (1, "silent")),
        crash_rounds=((2, 4),),
    )
    assert Scenario.from_json(scenario.to_json()) == scenario


def test_delay_specs_build_the_right_models():
    assert isinstance(DelaySpec("constant", (1.0,)).build(), ConstantDelay)
    assert isinstance(DelaySpec("uniform", (0.5, 1.5)).build(), UniformDelay)
    assert isinstance(
        DelaySpec("exponential", (1.0, 0.1, 20.0)).build(), ExponentialDelay
    )
    assert isinstance(
        DelaySpec("skewed", (0.5, 1.5), slow_pids=(0,)).build(), SkewedDelay
    )
    with pytest.raises(ValueError):
        DelaySpec("warp", ()).build()


def test_faulty_and_correct_pids():
    scenario = _full_scenario()
    assert scenario.faulty_pids() == (0, 2)
    assert scenario.correct_pids() == (1, 3, 4)


def test_clean_run_is_ok_and_records_decisions():
    scenario = Scenario(
        algorithm="ben-or", n=4, t=1, init_values=(1, 1, 1, 1), seed=0
    )
    outcome = run_scenario(scenario)
    assert outcome.status == OK
    assert set(outcome.decisions) == {0, 1, 2, 3}
    assert set(outcome.decisions.values()) == {1}
    assert outcome.rounds >= 1
    assert outcome.violation is None


def test_partitioned_stuck_run_classifies_undecided_not_violation():
    # A permanent partition splits the system below quorum on both sides:
    # no decision is possible, which is inconclusive — never "termination".
    scenario = Scenario(
        algorithm="ben-or",
        n=4,
        t=1,
        init_values=(0, 1, 0, 1),
        seed=0,
        network=NetworkSpec(
            partitions=(PartitionSpec(0.0, 1e9, ((0, 1), (2, 3))),)
        ),
        max_rounds=5,
        max_time=200.0,
    )
    outcome = run_scenario(scenario)
    assert outcome.status == UNDECIDED
    assert outcome.violation is None


def test_unknown_algorithm_raises_with_catalog():
    with pytest.raises(KeyError, match="registered"):
        get_algorithm("nope")


def test_random_scenarios_respect_fault_budget():
    for meta_seed in range(20):
        rng = random.Random(meta_seed)
        scenario = random_scenario("ben-or", rng)
        spec = get_algorithm("ben-or")
        assert len(scenario.faulty_pids()) <= spec.max_t(scenario.n)
        assert all(0 <= p < scenario.n for p in scenario.faulty_pids())
        sync = random_scenario("phase-king", rng)
        assert len(sync.faulty_pids()) <= get_algorithm("phase-king").max_t(sync.n)
