"""Adversarial crash-schedule stress tests (satellite S4).

Small-budget explorer sweeps aimed at the hardest failure shapes for the
two asynchronous algorithms — mid-broadcast crashes (a broadcast delivered
to only a prefix of recipients), crash+restart churn, partition flaps and
skewed schedulers.  These run in tier-1; the 1000-schedule versions live
behind the ``dst`` marker in ``test_explorer.py``.
"""

import pytest

from repro.dst import CrashSpec, NetworkSpec, PartitionSpec, Scenario, explore
from repro.dst.scenario import DelaySpec, VIOLATION, run_scenario


@pytest.mark.parametrize("algorithm", ["ben-or", "decentralized-raft"])
def test_async_algorithms_survive_adversarial_sweep(algorithm):
    report = explore(algorithm, schedules=60, meta_seed=1, mutation_rate=0.6)
    assert report.violation_count == 0, [
        (s.to_json(), v.kind, v.message) for s, v in report.violations
    ]
    # The sweep must actually have exercised the adversarial shapes.
    assert report.coverage.get("mid-broadcast-crash", 0) > 0
    assert report.coverage.get("partitioned", 0) > 0


@pytest.mark.parametrize("algorithm", ["ben-or", "decentralized-raft"])
def test_mid_broadcast_crash_storm(algorithm):
    # Every tolerated process crashes mid-broadcast at a different point:
    # the prefix-delivery case the coherence lemmas must absorb.
    for seed in range(8):
        scenario = Scenario(
            algorithm=algorithm,
            n=5,
            t=2,
            init_values=(0, 1, 0, 1, 1),
            seed=seed,
            crashes=(
                CrashSpec(0, after_sends=1 + seed % 4),
                CrashSpec(1, after_sends=5 + seed),
            ),
            max_rounds=40,
        )
        outcome = run_scenario(scenario)
        assert outcome.status != VIOLATION, outcome.violation


@pytest.mark.parametrize("algorithm", ["ben-or", "decentralized-raft"])
def test_partition_flap_with_restart_churn(algorithm):
    scenario = Scenario(
        algorithm=algorithm,
        n=6,
        t=2,
        init_values=(0, 1, 0, 1, 0, 1),
        seed=13,
        network=NetworkSpec(
            delay=DelaySpec("skewed", (0.5, 1.5), slow_pids=(0, 1), factor=6.0),
            partitions=(
                PartitionSpec(3.0, 9.0, ((0, 1), (2, 3, 4, 5))),
                PartitionSpec(15.0, 20.0, ((0, 1, 2), (3, 4, 5))),
            ),
        ),
        crashes=(CrashSpec(5, at_time=4.0, restart_at=11.0),),
        max_rounds=50,
        max_time=2_000.0,
    )
    outcome = run_scenario(scenario)
    assert outcome.status != VIOLATION, outcome.violation


def test_phase_king_survives_byzantine_king_sweep():
    # The sync sweep's byzantine-reshuffle mutation puts Byzantine pids on
    # the early kings — the placement the fixed-round rule must survive.
    report = explore("phase-king", schedules=60, meta_seed=5, mutation_rate=0.6)
    assert report.violation_count == 0, [
        (s.to_json(), v.kind, v.message) for s, v in report.violations
    ]
    assert any(k.startswith("byzantine:") for k in report.coverage)
