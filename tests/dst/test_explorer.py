"""Explorer tests: deterministic generation, adversarial mutations, and the
bug-catching acceptance path (broken variant found within a bounded budget).

The ``dst``-marked sweeps at the bottom are the long-haul version —
1000 schedules per model — excluded from tier-1 by the ``-m 'not dst'``
default and run with ``pytest -m dst``.
"""

import random

import pytest

from repro.dst import (
    ExplorationReport,
    explore,
    generate_scenarios,
    get_algorithm,
    mutate,
    random_scenario,
)
from repro.dst.explorer import ASYNC_MUTATIONS, SYNC_MUTATIONS


def test_generation_is_a_pure_function_of_the_meta_seed():
    first = generate_scenarios("ben-or", 40, meta_seed=11)
    second = generate_scenarios("ben-or", 40, meta_seed=11)
    assert first == second
    assert generate_scenarios("ben-or", 40, meta_seed=12) != first


def test_generation_mixes_walks_and_mutations():
    scenarios = generate_scenarios("ben-or", 60, meta_seed=0, mutation_rate=0.5)
    assert len(scenarios) == 60
    seeds = {s.seed for s in scenarios}
    assert len(seeds) > 30


@pytest.mark.parametrize("algorithm", ["ben-or", "phase-king"])
def test_mutations_preserve_scenario_wellformedness(algorithm):
    spec = get_algorithm(algorithm)
    rng = random.Random(7)
    scenario = random_scenario(algorithm, rng)
    for _ in range(100):
        scenario = mutate(scenario, rng)
        assert scenario.algorithm == algorithm
        assert len(scenario.faulty_pids()) <= spec.max_t(scenario.n)
        assert all(0 <= p < scenario.n for p in scenario.faulty_pids())
        if spec.model == "sync":
            assert not scenario.crashes and not scenario.network.partitions
        else:
            assert not scenario.byzantine and not scenario.crash_rounds


def test_adversarial_mutations_reach_every_failure_shape():
    # The targeted operators must actually inject the shapes they name:
    # drive a long mutation chain and check partitions, mid-broadcast
    # crashes and restarts all show up in the async model, and reshuffles,
    # strategy swaps and crash-stops in the sync model.
    rng = random.Random(0)
    async_shapes = set()
    scenario = random_scenario("ben-or", rng)
    for _ in range(200):
        scenario = mutate(scenario, rng)
        if scenario.network.partitions:
            async_shapes.add("partition")
        if any(c.after_sends is not None for c in scenario.crashes):
            async_shapes.add("mid-broadcast")
        if any(c.restart_at is not None for c in scenario.crashes):
            async_shapes.add("restart")
    assert async_shapes == {"partition", "mid-broadcast", "restart"}
    # Sync mutations rearrange Byzantine pids but never invent them, so
    # sample several starting walks and mutate each a few steps.
    sync_shapes = set()
    for _ in range(20):
        scenario = random_scenario("phase-king", rng)
        for _ in range(10):
            scenario = mutate(scenario, rng)
            if scenario.byzantine:
                sync_shapes.add("byzantine")
            if scenario.crash_rounds:
                sync_shapes.add("crash-stop")
    assert sync_shapes == {"byzantine", "crash-stop"}
    assert len(ASYNC_MUTATIONS) == 6 and len(SYNC_MUTATIONS) == 4


def test_report_aggregation_counts():
    report = explore("ben-or", schedules=25, meta_seed=4)
    assert isinstance(report, ExplorationReport)
    assert report.schedules == 25
    assert sum(report.outcomes.values()) == 25
    assert report.violation_count == 0
    assert report.events_total >= report.events_max > 0
    assert any(key.startswith("n:") for key in report.coverage)
    assert any(key.startswith("delay:") for key in report.coverage)


def test_explorer_catches_the_broken_variant_within_budget():
    # Acceptance path: the deliberately broken Ben-Or (plurality ratify)
    # must be caught by the sweep within a bounded schedule budget.
    report = explore(
        "ben-or-broken-coherence",
        schedules=200,
        meta_seed=0,
        stop_after_violations=1,
    )
    assert report.violation_count >= 1
    scenario, violation = report.violations[0]
    assert violation.kind == "vac-coherence"
    assert scenario.algorithm == "ben-or-broken-coherence"
    # Found early, not at the budget's edge.
    assert report.schedules < 200


def test_stop_after_violations_halts_the_sweep():
    full = explore("ben-or-broken-coherence", schedules=120, meta_seed=0)
    early = explore(
        "ben-or-broken-coherence",
        schedules=120,
        meta_seed=0,
        stop_after_violations=1,
    )
    assert early.schedules < full.schedules
    assert full.violation_count >= early.violation_count >= 1


# ----------------------------------------------------------------------
# Long-haul sweeps (opt in with `pytest -m dst`)
# ----------------------------------------------------------------------


@pytest.mark.dst
@pytest.mark.parametrize(
    "algorithm", ["ben-or", "decentralized-raft", "phase-king"]
)
def test_correct_algorithms_survive_thousand_schedule_sweep(algorithm):
    report = explore(algorithm, schedules=1000, meta_seed=2026)
    assert report.schedules == 1000
    assert report.violation_count == 0, [
        (s.to_json(), v.kind, v.message) for s, v in report.violations
    ]
