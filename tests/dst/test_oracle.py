"""Unit tests for the online invariant oracle (trace-listener checking).

Each test drives a :class:`~repro.sim.trace.Trace` with the checker
subscribed and plants a violating event, asserting the oracle aborts *at
that event* with the right check name — the "violations abort immediately
with the offending prefix" contract the explorer relies on.
"""

import pytest

from repro.core.confidence import ADOPT, COMMIT, VACILLATE
from repro.dst import OnlineInvariantChecker, OnlineViolation
from repro.sim import trace as tr
from repro.sim.trace import Trace


def _feed(checker, events):
    """Record events on a subscribed trace; return it."""
    trace = Trace((checker,))
    for time, kind, pid, detail in events:
        trace.record(time, kind, pid, detail)
    return trace


def test_agreement_violation_aborts_at_second_decide():
    checker = OnlineInvariantChecker([0, 1], decision_implies_commit=False)
    trace = Trace((checker,))
    trace.record(1.0, tr.DECIDE, 0, 1)
    with pytest.raises(OnlineViolation) as exc_info:
        trace.record(2.0, tr.DECIDE, 1, 0)
    assert exc_info.value.check == "agreement"
    assert exc_info.value.event_index == 1
    # The offending prefix is preserved on the trace.
    assert len(trace) == 2


def test_validity_violation_on_invented_decision():
    checker = OnlineInvariantChecker([0, 1], decision_implies_commit=False)
    with pytest.raises(OnlineViolation) as exc_info:
        _feed(checker, [(1.0, tr.DECIDE, 0, 7)])
    assert exc_info.value.check == "validity"


def test_decide_without_commit_caught_online():
    checker = OnlineInvariantChecker([0, 1])
    with pytest.raises(OnlineViolation) as exc_info:
        _feed(
            checker,
            [
                (1.0, tr.ANNOTATE, 0, ("vac", (0, ADOPT, 1))),
                (2.0, tr.DECIDE, 0, 1),
            ],
        )
    assert exc_info.value.check == "decide-without-commit"


def test_decide_backed_by_commit_passes():
    checker = OnlineInvariantChecker([0, 1])
    _feed(
        checker,
        [
            (1.0, tr.ANNOTATE, 0, ("round_input", (0, 1))),
            (1.5, tr.ANNOTATE, 0, ("vac", (0, COMMIT, 1))),
            (2.0, tr.DECIDE, 0, 1),
        ],
    )
    assert checker.violation is None
    assert checker.events_seen == 3


def test_vac_coherence_violation_aborts_at_offending_annotation():
    checker = OnlineInvariantChecker([0, 1], decision_implies_commit=False)
    with pytest.raises(OnlineViolation) as exc_info:
        _feed(
            checker,
            [
                (1.0, tr.ANNOTATE, 0, ("vac", (0, COMMIT, 1))),
                (2.0, tr.ANNOTATE, 1, ("vac", (0, VACILLATE, 0))),
            ],
        )
    assert exc_info.value.check == "vac-coherence"
    assert exc_info.value.event_index == 1


def test_ac_mode_rejects_vacillate():
    checker = OnlineInvariantChecker([0, 1], key="ac", decision_implies_commit=False)
    with pytest.raises(OnlineViolation) as exc_info:
        _feed(checker, [(1.0, tr.ANNOTATE, 0, ("ac", (0, VACILLATE, 1)))])
    assert exc_info.value.check == "ac-coherence"


def test_round_validity_checked_against_inputs_so_far():
    checker = OnlineInvariantChecker([0, 1], decision_implies_commit=False)
    with pytest.raises(OnlineViolation) as exc_info:
        _feed(
            checker,
            [
                (1.0, tr.ANNOTATE, 0, ("round_input", (0, 0))),
                (1.0, tr.ANNOTATE, 1, ("round_input", (0, 0))),
                (2.0, tr.ANNOTATE, 0, ("vac", (0, ADOPT, 1))),
            ],
        )
    assert exc_info.value.check == "round-validity"


def test_round_validity_can_be_disabled():
    checker = OnlineInvariantChecker(
        [0, 1], round_validity=False, decision_implies_commit=False
    )
    _feed(
        checker,
        [
            (1.0, tr.ANNOTATE, 0, ("round_input", (0, 0))),
            (2.0, tr.ANNOTATE, 0, ("vac", (0, ADOPT, 2))),
        ],
    )
    assert checker.violation is None


def test_untracked_pids_are_ignored():
    # Pid 2 is Byzantine: its contradictory outcome must not fire checks.
    checker = OnlineInvariantChecker(
        [0, 1], correct=(0, 1), decision_implies_commit=False
    )
    _feed(
        checker,
        [
            (1.0, tr.ANNOTATE, 0, ("vac", (0, COMMIT, 1))),
            (2.0, tr.ANNOTATE, 2, ("vac", (0, COMMIT, 0))),
            (3.0, tr.DECIDE, 2, 7),
        ],
    )
    assert checker.violation is None


def test_finalize_checks_termination():
    checker = OnlineInvariantChecker([0, 1], decision_implies_commit=False)
    trace = _feed(checker, [(1.0, tr.DECIDE, 0, 1)])
    assert checker.finalize(trace, expect_termination_of=[0]) == 0
    with pytest.raises(OnlineViolation) as exc_info:
        checker.finalize(trace, expect_termination_of=[0, 1])
    assert exc_info.value.check == "termination"


def test_finalize_checks_convergence():
    checker = OnlineInvariantChecker([1, 1], decision_implies_commit=False)
    trace = _feed(
        checker,
        [
            (1.0, tr.ANNOTATE, 0, ("round_input", (0, 1))),
            (1.0, tr.ANNOTATE, 1, ("round_input", (0, 1))),
            (2.0, tr.ANNOTATE, 0, ("vac", (0, ADOPT, 1))),
            (2.0, tr.ANNOTATE, 1, ("vac", (0, ADOPT, 1))),
        ],
    )
    with pytest.raises(OnlineViolation) as exc_info:
        checker.finalize(trace)
    assert exc_info.value.check == "convergence"
