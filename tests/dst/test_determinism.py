"""Determinism regression: identical inputs yield byte-identical traces.

The entire DST layer rests on runs being pure functions of
``(processes, config, seed)`` — the shrinker re-runs candidates, the corpus
replays stored cases, multiprocessing workers re-execute serialized
scenarios.  These tests pin that contract down hard: two runs with the same
arguments must serialize to *byte-identical* JSON, event for event.
"""

import json

import pytest

from repro.algorithms.ben_or import ben_or_template_consensus
from repro.algorithms.decentralized_raft import decentralized_raft_consensus
from repro.algorithms.phase_king import run_phase_king
from repro.dst import Scenario, explore, random_scenario, run_scenario
from repro.sim.async_runtime import AsyncRuntime
from repro.sim.failures import CrashPlan
from repro.sim.network import NetworkConfig, UniformDelay
from repro.sim.serialize import trace_records


def _serialized(trace) -> bytes:
    return "\n".join(
        json.dumps(record, sort_keys=True) for record in trace_records(trace)
    ).encode()


def _run_async(factory, *, n=5, seed=1234, crash_plans=()):
    runtime = AsyncRuntime(
        [factory() for _ in range(n)],
        init_values=[i % 2 for i in range(n)],
        t=(n - 1) // 2,
        network=NetworkConfig(delay_model=UniformDelay(0.2, 1.8)),
        seed=seed,
        crash_plans=list(crash_plans),
    )
    return runtime.run()


@pytest.mark.parametrize(
    "factory",
    [ben_or_template_consensus, decentralized_raft_consensus],
    ids=["ben-or", "decentralized-raft"],
)
def test_async_traces_are_byte_identical(factory):
    first = _run_async(factory)
    second = _run_async(factory)
    assert _serialized(first.trace) == _serialized(second.trace)
    assert first.decisions == second.decisions


def test_async_traces_identical_under_failures():
    plans = [CrashPlan(0, after_sends=3), CrashPlan(1, at_time=4.0, restart_at=9.0)]
    first = _run_async(ben_or_template_consensus, seed=77, crash_plans=plans)
    second = _run_async(ben_or_template_consensus, seed=77, crash_plans=plans)
    assert _serialized(first.trace) == _serialized(second.trace)


def test_seed_changes_the_trace():
    first = _run_async(ben_or_template_consensus, seed=1)
    second = _run_async(ben_or_template_consensus, seed=2)
    assert _serialized(first.trace) != _serialized(second.trace)


def test_sync_traces_are_byte_identical():
    runs = [
        run_phase_king([0, 1, 0, 1, 1, 0, 1], t=2, mode="fixed", seed=42)
        for _ in range(2)
    ]
    assert _serialized(runs[0].trace) == _serialized(runs[1].trace)
    assert runs[0].decisions == runs[1].decisions


def test_scenario_outcomes_identical_across_json_round_trip():
    import random

    scenario = random_scenario("ben-or", random.Random(5))
    clone = Scenario.from_json(scenario.to_json())
    assert clone == scenario
    first, second = run_scenario(scenario), run_scenario(clone)
    assert (first.status, first.events, first.decisions, first.stop_reason) == (
        second.status,
        second.events,
        second.decisions,
        second.stop_reason,
    )


def test_sweep_reports_identical_across_runs():
    first = explore("ben-or", schedules=20, meta_seed=9)
    second = explore("ben-or", schedules=20, meta_seed=9)
    assert first.outcomes == second.outcomes
    assert first.stop_reasons == second.stop_reasons
    assert first.coverage == second.coverage
