"""Shared test harness utilities.

* One-shot processes that invoke a single framework object and annotate its
  outcome — used to unit-test AC/VAC implementations in isolation.
* Scripted objects with predetermined outcomes — used to unit-test the
  generic templates without a real protocol underneath.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.core.confidence import Confidence
from repro.core.objects import (
    AdoptCommitObject,
    ConciliatorObject,
    ReconciliatorObject,
    VacillateAdoptCommitObject,
)
from repro.sim.messages import Pid
from repro.sim.ops import Annotate
from repro.sim.process import Process, ProcessAPI
from repro.sim.trace import Trace


class OneShotDetector(Process):
    """Invoke one agreement detector once and annotate the outcome.

    Works for both AC and VAC objects (same invoke signature).  The outcome
    is annotated under ``"outcome"`` as ``(confidence, value)``.
    """

    def __init__(self, detector, round_no: Hashable = 1):
        self.detector = detector
        self.round_no = round_no

    def run(self, api: ProcessAPI):
        outcome = yield from self.detector.invoke(
            api, api.init_value, self.round_no
        )
        yield Annotate("outcome", outcome)


def collect_outcomes(
    trace: Trace, correct: Optional[Sequence[Pid]] = None
) -> Dict[Pid, Tuple[Confidence, Any]]:
    """Gather the per-pid ``"outcome"`` annotations of one-shot runs."""
    allowed = None if correct is None else set(correct)
    outcomes: Dict[Pid, Tuple[Confidence, Any]] = {}
    for pid, _time, value in trace.annotations("outcome"):
        if allowed is None or pid in allowed:
            outcomes[pid] = value
    return outcomes


class ScriptedVac(VacillateAdoptCommitObject):
    """A VAC whose outcomes are scripted per (pid, round) — no messaging.

    Args:
        script: pid -> list of (confidence, value) outcomes, one per round
            (the last entry repeats if rounds run past the script).
    """

    def __init__(self, script: Dict[Pid, List[Tuple[Confidence, Any]]]):
        self.script = script
        self.calls: List[Tuple[Pid, Hashable, Any]] = []

    def invoke(self, api: ProcessAPI, value: Any, round_no: Hashable):
        self.calls.append((api.pid, round_no, value))
        outcomes = self.script[api.pid]
        index = min(int(round_no) - 1, len(outcomes) - 1)
        yield Annotate("scripted_vac", (round_no, value))
        return outcomes[index]


class ScriptedAdoptCommit(AdoptCommitObject):
    """An AC with scripted outcomes per (pid, round) — no messaging."""

    def __init__(self, script: Dict[Pid, List[Tuple[Confidence, Any]]]):
        self.script = script
        self.calls: List[Tuple[Pid, Hashable, Any]] = []

    def invoke(self, api: ProcessAPI, value: Any, round_no: Hashable):
        self.calls.append((api.pid, round_no, value))
        outcomes = self.script[api.pid]
        key = round_no[0] if isinstance(round_no, tuple) else round_no
        index = min(int(key) - 1, len(outcomes) - 1)
        yield Annotate("scripted_ac", (round_no, value))
        return outcomes[index]


class EchoAdoptCommit(AdoptCommitObject):
    """An AC that always returns the scripted confidence with the input value."""

    def __init__(self, confidence: Confidence):
        self.confidence = confidence

    def invoke(self, api: ProcessAPI, value: Any, round_no: Hashable):
        yield Annotate("echo_ac", (round_no, value))
        return self.confidence, value


class FixedReconciliator(ReconciliatorObject):
    """A reconciliator that always returns a fixed value."""

    def __init__(self, value: Any):
        self.value = value
        self.calls = 0

    def invoke(self, api: ProcessAPI, confidence, value, round_no):
        self.calls += 1
        yield Annotate("fixed_reconciliator", (round_no, self.value))
        return self.value


class FixedConciliator(ConciliatorObject):
    """A conciliator that always returns a fixed value."""

    def __init__(self, value: Any):
        self.value = value
        self.calls = 0

    def invoke(self, api: ProcessAPI, confidence, value, round_no):
        self.calls += 1
        yield Annotate("fixed_conciliator", (round_no, self.value))
        return self.value
