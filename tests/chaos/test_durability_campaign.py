"""Power-failure chaos campaigns — durability's acceptance criteria.

A seeded campaign of power failures (single-node, whole-cluster, torn
final frames, flipped bits) against a cluster persisting to real data
directories must produce a linearizable history: every restart is WAL
crash recovery, so acked writes either survive or the checker screams.
The same campaign with the ``lost-ack`` bug injected (writes acked
before fsync) must FAIL with a minimal witness.  Marked ``chaos``:
opt in with ``pytest -m chaos``.
"""

import asyncio

import pytest

from repro.chaos import FaultPlan, History, Nemesis, check_history
from repro.chaos.cli import CAMPAIGN_TIMINGS
from repro.chaos.nemesis import FaultEvent
from repro.chaos.workload import close_clients, make_clients, run_workload
from repro.live import LiveKVCluster

pytestmark = pytest.mark.chaos


def run(coro, timeout=300.0):
    return asyncio.run(asyncio.wait_for(coro, timeout))


async def _campaign(
    *,
    seed,
    data_dir,
    duration=12.0,
    kinds=("power-fail", "power-fail-all", "torn-tail", "bit-flip"),
    lost_ack_bug=False,
    sync_mode="inline",
    nodes=5,
    shards=2,
    clients=4,
):
    """Boot → power-fail+load → heal → grace reads → check the history."""
    plan = FaultPlan.random_campaign(
        seed, duration=duration, period=3.0, kinds=kinds
    )
    cluster = LiveKVCluster(
        nodes,
        seed=seed,
        shards=shards,
        data_dir=data_dir,
        lost_ack_bug=lost_ack_bug,
        sync_mode=sync_mode,
        **CAMPAIGN_TIMINGS,
    )
    history = History()
    recorders = make_clients(cluster.cluster, history, clients, shards=shards)
    try:
        await cluster.start()
        await cluster.wait_for_all_leaders(20.0)
        nemesis = Nemesis(cluster, plan)
        workload = asyncio.ensure_future(
            run_workload(
                recorders, duration=duration, seed=seed, pause=0.005
            )
        )
        await nemesis.run()
        await workload
        await nemesis.apply(FaultEvent(0.0, "heal"))
        await nemesis.apply(FaultEvent(0.0, "restart"))
        await cluster.wait_for_all_leaders(20.0)
        # Post-heal reads: recovered state must still read consistently.
        await run_workload(
            recorders,
            duration=2.0,
            seed=seed + 1,
            read_fraction=1.0,
            readonly_clients=clients,
            pause=0.005,
        )
    finally:
        await close_clients(recorders)
        await cluster.stop()
    assert len(history) > 100, "campaign produced too little history"
    return check_history(history, time_budget=60.0)


class TestDurabilityCampaigns:
    @pytest.mark.parametrize("sync_mode", ["inline", "pipelined"])
    def test_power_failure_campaign_is_linearizable(self, tmp_path, sync_mode):
        """Correct WAL + fsync barriers survive every power-failure kind,
        including full-cluster outages that restart from disk alone —
        with the fsync inline on the event loop or off-loaded to the
        pipelined durability-watermark thread."""
        report = run(
            _campaign(seed=5, data_dir=str(tmp_path), sync_mode=sync_mode)
        )
        assert report.ok is True, report.summary()

    @pytest.mark.parametrize("sync_mode", ["inline", "pipelined"])
    def test_lost_ack_bug_is_caught_with_witness(self, tmp_path, sync_mode):
        """Acking before fsync must fail the check after a full power
        loss: the cluster forgets writes it confirmed, and the checker
        produces a witness proving it.  The pipelined barrier must not
        mask the bug: with fsync skipped the watermark still advances,
        so acks escape and the canary still fires."""
        report = run(
            _campaign(
                seed=5,
                data_dir=str(tmp_path),
                kinds=("power-fail-all",),
                lost_ack_bug=True,
                sync_mode=sync_mode,
            )
        )
        assert report.ok is False, report.summary()
        violation = report.violations[0]
        assert violation.witness, "violations must carry a witness"
        # Same witness-quality bar as the stale-reads canary: ordered,
        # minimal, and it names the contradiction.
        assert violation.witness == sorted(
            violation.witness, key=lambda o: o.inv
        )
        assert len(violation.witness) <= violation.ops
        assert "linearized" in violation.reason or "linearization" in (
            violation.reason
        )
