"""End-to-end chaos campaigns — the PR's acceptance criteria.

A seeded campaign (leader kills + partitions against a 5-node, 2-shard
cluster) must produce a history the checker verifies linearizable; the
same campaign with a known consistency bug injected (lin reads served
from a deposed leader's local state) must FAIL the check with a minimal
witness.  Marked ``chaos``: opt in with ``pytest -m chaos``.
"""

import asyncio

import pytest

from repro.chaos import FaultPlan, History, Nemesis, check_history
from repro.chaos.cli import CAMPAIGN_TIMINGS
from repro.chaos.nemesis import FaultEvent
from repro.chaos.workload import close_clients, make_clients, run_workload
from repro.live import LiveKVCluster

pytestmark = pytest.mark.chaos


def run(coro, timeout=300.0):
    return asyncio.run(asyncio.wait_for(coro, timeout))


async def _campaign(
    *,
    seed,
    duration=10.0,
    kinds=("kill-leader", "partition", "partition-leader"),
    unsafe_lin_reads=False,
    nodes=5,
    shards=2,
    clients=4,
    lease_attack=False,
    **server_options,
):
    """Boot → fault+load → heal → grace reads → check.  Returns report."""
    if lease_attack:
        plan = FaultPlan.lease_attack_campaign(
            seed, duration=duration, period=3.0
        )
    else:
        plan = FaultPlan.random_campaign(
            seed, duration=duration, period=3.0, kinds=kinds
        )
    cluster = LiveKVCluster(
        nodes,
        seed=seed,
        shards=shards,
        unsafe_lin_reads=unsafe_lin_reads,
        **server_options,
        **CAMPAIGN_TIMINGS,
    )
    history = History()
    recorders = make_clients(cluster.cluster, history, clients, shards=shards)
    try:
        await cluster.start()
        await cluster.wait_for_all_leaders(20.0)
        nemesis = Nemesis(cluster, plan)
        workload = asyncio.ensure_future(
            run_workload(
                recorders, duration=duration, seed=seed, pause=0.005
            )
        )
        await nemesis.run()
        await workload
        await nemesis.apply(FaultEvent(0.0, "heal"))
        await nemesis.apply(FaultEvent(0.0, "restart"))
        await cluster.wait_for_all_leaders(20.0)
        # Post-heal reads: every key must still read consistently.
        await run_workload(
            recorders,
            duration=2.0,
            seed=seed + 1,
            read_fraction=1.0,
            readonly_clients=clients,
            pause=0.005,
        )
    finally:
        await close_clients(recorders)
        await cluster.stop()
    assert len(history) > 100, "campaign produced too little history"
    return check_history(history, time_budget=60.0)


class TestCampaigns:
    def test_seeded_campaign_is_linearizable(self):
        """A correct cluster survives leader kills and partitions."""
        report = run(_campaign(seed=7))
        assert report.ok is True, report.summary()

    def test_stale_read_bug_is_caught_with_witness(self):
        """The injected deposed-leader bug must fail the check."""
        report = run(
            _campaign(
                seed=7,
                kinds=("partition-leader",),
                unsafe_lin_reads=True,
            )
        )
        assert report.ok is False, report.summary()
        violation = report.violations[0]
        assert violation.witness, "violations must carry a witness"
        # The witness is a usable artifact: ordered, ends at the
        # contradiction, and far smaller than the whole history.
        assert violation.witness == sorted(
            violation.witness, key=lambda o: o.inv
        )
        assert len(violation.witness) <= violation.ops
        assert "linearized" in violation.reason or "linearization" in (
            violation.reason
        )

    def test_lease_attack_with_drift_bound_is_linearizable(self):
        """Clock-skewed, isolated leaseholders with a correct drift
        bound stop serving before a rival can commit past them."""
        report = run(
            _campaign(
                seed=11,
                nodes=3,
                shards=1,
                lease_attack=True,
                read_tier="lease",
                drift_bound=0.25,
            )
        )
        assert report.ok is True, report.summary()

    def test_unbounded_lease_is_caught_with_witness(self):
        """A lease that ignores clock drift serves stale reads after
        deposition; the checker must reject the history."""
        report = run(
            _campaign(
                seed=11,
                nodes=3,
                shards=1,
                lease_attack=True,
                read_tier="lease",
                drift_bound=0.0,
            )
        )
        assert report.ok is False, report.summary()
        violation = report.violations[0]
        assert violation.witness, "violations must carry a witness"
        assert len(violation.witness) <= violation.ops
