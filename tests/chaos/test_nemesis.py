"""Fault-plan generation: validation, determinism, and structure."""

import pytest

from repro.chaos import FaultEvent, FaultPlan
from repro.chaos.nemesis import DEFAULT_KINDS, FAULT_KINDS


class TestFaultPlanValidation:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            FaultPlan((FaultEvent(1.0, "meteor-strike"),))

    def test_rejects_out_of_order_events(self):
        with pytest.raises(ValueError):
            FaultPlan((FaultEvent(2.0, "heal"), FaultEvent(1.0, "heal")))

    def test_rejects_negative_time(self):
        with pytest.raises(ValueError):
            FaultPlan((FaultEvent(-1.0, "heal"),))

    def test_event_args_accessor(self):
        event = FaultEvent(1.0, "drop", (("prob", 0.4),))
        assert event.arg("prob") == 0.4
        assert event.arg("missing", "default") == "default"

    def test_duration(self):
        assert FaultPlan(()).duration == 0.0
        plan = FaultPlan((FaultEvent(1.0, "heal"), FaultEvent(4.5, "heal")))
        assert plan.duration == 4.5


class TestSeededGeneration:
    def test_same_seed_same_plan(self):
        """The satellite guarantee: seed ⇒ identical fault schedule."""
        a = FaultPlan.random_campaign(42, duration=30.0, period=3.0)
        b = FaultPlan.random_campaign(42, duration=30.0, period=3.0)
        assert a == b
        assert a.events == b.events

    def test_different_seed_different_plan(self):
        a = FaultPlan.random_campaign(1, duration=30.0, period=3.0)
        b = FaultPlan.random_campaign(2, duration=30.0, period=3.0)
        assert a != b

    def test_plan_is_valid_and_time_ordered(self):
        plan = FaultPlan.random_campaign(7, duration=60.0, period=2.0)
        times = [event.at for event in plan.events]
        assert times == sorted(times)
        assert all(event.kind in FAULT_KINDS for event in plan.events)
        assert plan.duration < 60.0

    def test_disruptions_are_healed(self):
        plan = FaultPlan.random_campaign(3, duration=30.0, period=3.0)
        disruptive = [
            e for e in plan.events if e.kind not in ("heal", "restart")
        ]
        heals = [e for e in plan.events if e.kind == "heal"]
        assert disruptive, "campaign must disrupt something"
        # Every disruption before the tail gets a heal after it.
        assert len(heals) >= len(disruptive) - 1

    def test_kind_restriction(self):
        plan = FaultPlan.random_campaign(
            5, duration=30.0, period=3.0, kinds=("kill-leader",)
        )
        kinds = {e.kind for e in plan.events}
        assert kinds <= {"kill-leader", "heal", "restart"}

    def test_rejects_empty_or_bad_kinds(self):
        with pytest.raises(ValueError):
            FaultPlan.random_campaign(1, kinds=())
        with pytest.raises(ValueError):
            FaultPlan.random_campaign(1, kinds=("nope",))
        with pytest.raises(ValueError):
            FaultPlan.random_campaign(1, period=0.0)

    def test_victim_rolls_are_reproducible(self):
        """Victim choice is pre-rolled into the plan, not drawn live, so
        executing the same plan twice picks the same victims (given the
        same cluster state)."""
        plan = FaultPlan.random_campaign(9, duration=20.0, period=2.0)
        rolls = [
            e.arg("roll")
            for e in plan.events
            if e.kind not in ("heal", "restart")
        ]
        assert all(isinstance(r, float) and 0.0 <= r < 1.0 for r in rolls)

    def test_default_kinds_are_valid(self):
        assert set(DEFAULT_KINDS) <= set(FAULT_KINDS)
