"""Transport fault hooks: unit semantics plus a live partition test.

Units exercise :class:`~repro.live.transport.LinkFault` and the per-link
install/heal API over real localhost sockets; the ``chaos``-marked
integration test partitions a real KV cluster and checks the Raft-level
consequences (majority commits, minority stalls, heal converges).
"""

import asyncio

import pytest

from repro.live import ClusterConfig, LinkFault, LiveKVCluster, PeerTransport
from repro.chaos import heal_cluster, partition_cluster

FAST = dict(election_timeout=(0.15, 0.3), heartbeat_interval=0.05)


def run(coro, timeout=120.0):
    return asyncio.run(asyncio.wait_for(coro, timeout))


class TestLinkFaultValidation:
    def test_rejects_bad_drop(self):
        with pytest.raises(ValueError):
            LinkFault(drop=1.5)
        with pytest.raises(ValueError):
            LinkFault(drop=-0.1)

    def test_rejects_negative_delay(self):
        with pytest.raises(ValueError):
            LinkFault(delay=-0.01)

    def test_blackhole_discards_everything(self):
        class NeverRandom:
            def random(self):  # pragma: no cover - must not be consulted
                raise AssertionError("blackhole must not sample")

        assert LinkFault(blackhole=True).discards(NeverRandom())

    def test_drop_probability_uses_rng(self):
        class FixedRandom:
            def __init__(self, value):
                self.value = value

            def random(self):
                return self.value

        fault = LinkFault(drop=0.5)
        assert fault.discards(FixedRandom(0.4))
        assert not fault.discards(FixedRandom(0.6))


class TestFaultInstallation:
    def _transport(self):
        return PeerTransport(ClusterConfig.localhost(3), 0)

    def test_direction_routing(self):
        transport = self._transport()
        transport.set_link_fault(1, blackhole=True, direction="out")
        transport.set_link_fault(2, drop=0.3, direction="in")
        faults = transport.link_faults()
        assert 1 in faults["out"] and 1 not in faults["in"]
        assert 2 in faults["in"] and 2 not in faults["out"]
        transport.set_link_fault(1, delay=0.1, direction="both")
        faults = transport.link_faults()
        assert faults["out"][1].delay == faults["in"][1].delay == 0.1

    def test_install_is_replace_not_stack(self):
        transport = self._transport()
        transport.set_link_fault(1, drop=0.9)
        transport.set_link_fault(1, drop=0.1)
        faults = transport.link_faults()
        assert faults["out"][1].drop == 0.1
        assert len(faults["out"]) == 1

    def test_heal_is_idempotent(self):
        transport = self._transport()
        transport.set_link_fault(1, blackhole=True)
        transport.heal_link(1)
        transport.heal_link(1)  # healing a healthy link: no-op
        transport.heal_link()  # healing everything on no faults: no-op
        assert transport.link_faults() == {"out": {}, "in": {}}

    def test_heal_one_link_leaves_others(self):
        transport = self._transport()
        transport.set_link_fault(1, blackhole=True)
        transport.set_link_fault(2, blackhole=True)
        transport.heal_link(1)
        faults = transport.link_faults()
        assert 1 not in faults["out"] and 2 in faults["out"]

    def test_rejects_unknown_direction(self):
        with pytest.raises(ValueError):
            self._transport().set_link_fault(1, drop=0.5, direction="sideways")


async def _pair(cluster_size=2, **options):
    """Two connected transports; returns (a, b, inbox_a, inbox_b)."""
    cluster = ClusterConfig.localhost(cluster_size)
    inboxes = ([], [])
    transports = []
    for pid in range(2):
        inbox = inboxes[pid]

        def handler(src, payload, elapsed, _inbox=inbox):
            _inbox.append((src, payload))

        transports.append(
            PeerTransport(cluster, pid, handler, jitter_seed=pid, **options)
        )
    for transport in transports:
        await transport.start()
    return transports[0], transports[1], inboxes[0], inboxes[1]


async def _eventually(predicate, timeout=5.0, interval=0.01):
    deadline = asyncio.get_event_loop().time() + timeout
    while asyncio.get_event_loop().time() < deadline:
        if predicate():
            return True
        await asyncio.sleep(interval)
    return predicate()


class TestFaultsOnTheWire:
    def test_outbound_blackhole_drops_then_heal_delivers(self):
        async def scenario():
            a, b, _, inbox_b = await _pair()
            try:
                a.send(1, "before")
                assert await _eventually(lambda: len(inbox_b) == 1)
                a.set_link_fault(1, blackhole=True, direction="out")
                faulted_before = a.stats.faulted
                a.send(1, "lost")
                await asyncio.sleep(0.2)
                assert len(inbox_b) == 1  # nothing new arrived
                assert a.stats.faulted > faulted_before
                a.heal_link(1)
                a.send(1, "after")
                assert await _eventually(lambda: len(inbox_b) == 2)
                assert [m for _, m in inbox_b] == ["before", "after"]
            finally:
                await a.stop()
                await b.stop()

        run(scenario())

    def test_inbound_blackhole_drops_at_receiver(self):
        async def scenario():
            a, b, _, inbox_b = await _pair()
            try:
                b.set_link_fault(0, blackhole=True, direction="in")
                a.send(1, "suppressed")
                await asyncio.sleep(0.2)
                assert inbox_b == []
                assert b.stats.faulted >= 1
                b.heal_link(0)
                a.send(1, "visible")
                assert await _eventually(lambda: len(inbox_b) == 1)
            finally:
                await a.stop()
                await b.stop()

        run(scenario())

    def test_asymmetric_fault_leaves_reverse_path(self):
        async def scenario():
            a, b, inbox_a, inbox_b = await _pair()
            try:
                a.set_link_fault(1, blackhole=True, direction="out")
                a.send(1, "into the void")
                b.send(0, "still heard")
                assert await _eventually(lambda: len(inbox_a) == 1)
                await asyncio.sleep(0.1)
                assert inbox_b == []
            finally:
                await a.stop()
                await b.stop()

        run(scenario())

    def test_extra_delay_preserves_order(self):
        async def scenario():
            a, b, _, inbox_b = await _pair()
            try:
                loop = asyncio.get_event_loop()
                # Delay is enforced on the receiving side of the link.
                b.set_link_fault(0, delay=0.15, direction="in")
                start = loop.time()
                for i in range(20):
                    a.send(1, i)
                assert await _eventually(lambda: len(inbox_b) == 20)
                elapsed = loop.time() - start
                assert elapsed >= 0.15
                assert [m for _, m in inbox_b] == list(range(20))
            finally:
                await a.stop()
                await b.stop()

        run(scenario())

    def test_drop_probability_loses_some_not_all(self):
        async def scenario():
            a, b, _, inbox_b = await _pair()
            try:
                a.set_link_fault(1, drop=0.5, direction="out")
                for i in range(200):
                    a.send(1, i)
                await _eventually(lambda: a.stats.faulted > 0, timeout=2.0)
                await asyncio.sleep(0.5)
                received = len(inbox_b)
                assert 0 < received < 200
                assert a.stats.faulted == 200 - received
                # Survivors keep their relative order.
                values = [m for _, m in inbox_b]
                assert values == sorted(values)
            finally:
                await a.stop()
                await b.stop()

        run(scenario())


@pytest.mark.chaos
class TestLivePartition:
    def test_majority_commits_minority_stalls_heal_converges(self):
        async def scenario():
            from repro.live import AsyncKVClient

            cluster = LiveKVCluster(5, seed=21, **FAST)
            await cluster.start()
            client = AsyncKVClient(cluster.cluster, request_timeout=1.0)
            try:
                await cluster.wait_for_leader(timeout=15.0)
                await client.put("pre", "partition")

                minority = [0, 1]
                majority = [2, 3, 4]
                partition_cluster(cluster, minority, majority)
                # The majority must elect (if needed) and keep committing.
                leader = None
                deadline = asyncio.get_event_loop().time() + 15.0
                while asyncio.get_event_loop().time() < deadline:
                    leader = cluster.leader_pid(0)
                    if leader in majority:
                        break
                    await asyncio.sleep(0.05)
                assert leader in majority
                for i in range(5):
                    await client.put(f"during-{i}", i)
                majority_applied = max(
                    cluster.servers[p].node.last_applied for p in majority
                )
                minority_applied = max(
                    cluster.servers[p].node.last_applied for p in minority
                )
                assert majority_applied > minority_applied

                heal_cluster(cluster)
                # Healed minority must catch up to the same applied state.
                async def converged():
                    target = max(
                        cluster.servers[p].node.last_applied
                        for p in majority
                    )
                    return all(
                        cluster.servers[p].node.last_applied >= target
                        for p in minority
                    )

                deadline = asyncio.get_event_loop().time() + 20.0
                while asyncio.get_event_loop().time() < deadline:
                    if await converged():
                        break
                    await asyncio.sleep(0.1)
                assert await converged()
                for p in minority:
                    machine = cluster.servers[p].node.machine
                    assert machine.data.get("during-4") == 4
            finally:
                await client.close()
                await cluster.stop()

        run(scenario())
