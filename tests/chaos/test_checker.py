"""Checker self-tests: hand-built histories with known verdicts.

The linearizability checker is itself test infrastructure, so it gets the
adversarial treatment: known-good histories it must accept, classic
violations (stale read, lost update, split-brain double observation) it
must reject with the right witness, and ambiguous open-ended ops it must
allow to have happened — or not.
"""

from repro.chaos import History, OpRecord, check_history
from repro.chaos.checker import UNWRITTEN, _Budget, _entries
from repro.chaos.history import GET, PUT


def put(op_id, client, key, value, inv, ret):
    return OpRecord(op_id, client, PUT, key, value, inv=inv, ret=ret, ok=True)


def get(op_id, client, key, value, inv, ret, found=True):
    return OpRecord(
        op_id, client, GET, key, value if found else None,
        inv=inv, ret=ret, ok=True, found=found,
    )


def open_put(op_id, client, key, value, inv):
    return OpRecord(op_id, client, PUT, key, value, inv=inv, ret=None, ok=None)


def check(*ops, time_budget=10.0):
    return check_history(History.from_ops(list(ops)), time_budget=time_budget)


class TestAccepts:
    def test_empty_history(self):
        assert check().ok is True

    def test_sequential_write_then_read(self):
        report = check(
            put("1", 0, "x", "a", 0.0, 1.0),
            get("2", 1, "x", "a", 2.0, 3.0),
        )
        assert report.ok is True

    def test_read_before_any_write_sees_nothing(self):
        assert check(get("1", 0, "x", None, 0.0, 1.0, found=False)).ok is True

    def test_concurrent_writes_any_order(self):
        # w(a) and w(b) overlap: a later read may see either winner.
        for winner in ("a", "b"):
            report = check(
                put("1", 0, "x", "a", 0.0, 2.0),
                put("2", 1, "x", "b", 0.5, 1.8),
                get("3", 2, "x", winner, 2.5, 3.0),
            )
            assert report.ok is True, winner

    def test_read_concurrent_with_write_sees_old_or_new(self):
        for seen in ("a", "n"):
            report = check(
                put("1", 0, "x", "a", 0.0, 1.0),
                put("2", 0, "x", "n", 2.0, 4.0),
                get("3", 1, "x", seen, 2.5, 3.5),  # overlaps the new write
            )
            assert report.ok is True, seen

    def test_keys_are_independent(self):
        report = check(
            put("1", 0, "x", "a", 0.0, 1.0),
            put("2", 0, "y", "b", 2.0, 3.0),
            get("3", 1, "x", "a", 4.0, 5.0),
            get("4", 1, "y", "b", 4.0, 5.0),
        )
        assert report.ok is True
        assert {r.key for r in report.results} == {"x", "y"}

    def test_failed_reads_constrain_nothing(self):
        bad_read = OpRecord(
            "2", 1, GET, "x", None, inv=2.0, ret=3.0, ok=False
        )
        report = check(put("1", 0, "x", "a", 0.0, 1.0), bad_read)
        assert report.ok is True


class TestAmbiguousOps:
    """An open-ended put may take effect at any point after inv, or never."""

    def test_open_put_observed_later(self):
        report = check(
            put("1", 0, "x", "a", 0.0, 1.0),
            open_put("2", 0, "x", "b", 1.5),
            get("3", 1, "x", "b", 5.0, 6.0),
        )
        assert report.ok is True

    def test_open_put_never_applied(self):
        report = check(
            put("1", 0, "x", "a", 0.0, 1.0),
            open_put("2", 0, "x", "b", 1.5),
            get("3", 1, "x", "a", 5.0, 6.0),
        )
        assert report.ok is True

    def test_open_put_cannot_apply_before_invocation(self):
        # The read completes before the ambiguous put was even invoked,
        # so "it took effect early" is not a legal explanation.
        report = check(
            put("1", 0, "x", "a", 0.0, 1.0),
            get("2", 1, "x", "b", 2.0, 3.0),
            open_put("3", 0, "x", "b", 4.0),
        )
        assert report.ok is False

    def test_open_put_cannot_unapply(self):
        # Once observed, an ambiguous write is fixed in the order: a later
        # read cannot roll back to the pre-write value (no second w(a)).
        report = check(
            put("1", 0, "x", "a", 0.0, 1.0),
            open_put("2", 0, "x", "b", 1.5),
            get("3", 1, "x", "b", 2.0, 3.0),
            get("4", 1, "x", "a", 3.5, 4.5),
        )
        assert report.ok is False

    def test_open_get_is_dropped(self):
        ops = [
            put("1", 0, "x", "a", 0.0, 1.0),
            OpRecord("2", 1, GET, "x", None, inv=2.0, ret=None, ok=None),
        ]
        assert len(_entries(ops)) == 1
        assert check(*ops).ok is True


class TestRejects:
    def test_stale_read(self):
        # The write of "a" completed; a later read must not miss it.
        report = check(
            put("1", 0, "x", "a", 0.0, 1.0),
            get("2", 1, "x", None, 2.0, 3.0, found=False),
        )
        assert report.ok is False
        [violation] = report.violations
        assert violation.key == "x"
        assert len(violation.witness) == 2
        assert "read of nothing" in violation.reason

    def test_stale_read_of_overwritten_value(self):
        report = check(
            put("1", 0, "x", "old", 0.0, 1.0),
            put("2", 0, "x", "new", 2.0, 3.0),
            get("3", 1, "x", "old", 4.0, 5.0),
        )
        assert report.ok is False

    def test_lost_update(self):
        # Both writes acknowledged sequentially; the second vanished.
        report = check(
            put("1", 0, "x", "a", 0.0, 1.0),
            put("2", 1, "x", "b", 2.0, 3.0),
            get("3", 2, "x", "a", 4.0, 5.0),
            get("4", 2, "x", "a", 6.0, 7.0),
        )
        assert report.ok is False

    def test_split_brain_double_observation(self):
        # Two sequential reads observe the two writes in *reverse* write
        # order — the signature of split-brain serving from two logs.
        report = check(
            put("1", 0, "x", "a", 0.0, 0.5),
            put("2", 0, "x", "b", 1.0, 1.5),
            get("3", 1, "x", "b", 2.0, 2.5),
            get("4", 2, "x", "a", 3.0, 3.5),
        )
        assert report.ok is False
        [violation] = report.violations
        # Minimal witness: all four ops are needed to exhibit the cycle.
        assert len(violation.witness) == 4

    def test_witness_is_minimal_prefix(self):
        # A long healthy run followed by one stale read: the witness must
        # stop at the violation, not drag in the later ops.
        ops = []
        t = 0.0
        for i in range(50):
            ops.append(put(f"w{i}", 0, "x", f"v{i}", t, t + 0.5))
            t += 1.0
        ops.append(get("bad", 1, "x", "v10", t, t + 0.5))  # long overwritten
        t += 1.0
        for i in range(50, 60):
            ops.append(put(f"w{i}", 0, "x", f"v{i}", t, t + 0.5))
            t += 1.0
        report = check(*ops)
        assert report.ok is False
        [violation] = report.violations
        assert violation.witness[-1].op_id == "bad"
        assert len(violation.witness) == 51  # 50 earlier puts + the bad read

    def test_one_bad_key_does_not_taint_others(self):
        report = check(
            put("1", 0, "x", "a", 0.0, 1.0),
            get("2", 1, "x", None, 2.0, 3.0, found=False),
            put("3", 0, "y", "b", 0.0, 1.0),
            get("4", 1, "y", "b", 2.0, 3.0),
        )
        assert report.ok is False
        assert [v.key for v in report.violations] == ["x"]
        good = [r for r in report.results if r.key == "y"]
        assert good[0].ok is True


class TestBudget:
    def test_exhausted_budget_reports_unknown_not_violation(self):
        # Enough ops that the search crosses a budget-check stride.
        ops = [
            put(f"w{i}", i % 4, "x", f"v{i}", float(i), i + 0.5)
            for i in range(600)
        ]
        report = check(*ops, time_budget=0.0)
        assert report.ok is None
        assert report.budget_exhausted
        assert not report.violations
        assert "unknown" in report.summary()

    def test_budget_object_trips_after_deadline(self):
        budget = _Budget(0.0)
        assert any(budget.spent() for _ in range(10_000))

    def test_large_history_within_budget(self):
        # 2k sequential ops must check in well under a second (the search
        # is near-linear for low-contention histories).
        ops, value, t = [], None, 0.0
        for i in range(2000):
            t += 1.0
            if i % 3 == 0:
                value = f"v{i}"
                ops.append(put(f"w{i}", i % 4, "x", value, t, t + 0.5))
            else:
                ops.append(get(f"r{i}", i % 4, "x", value, t, t + 0.5,
                               found=value is not None))
        report = check(*ops, time_budget=10.0)
        assert report.ok is True


def test_unwritten_sentinel_is_not_a_value():
    assert UNWRITTEN is not None
    report = check_history(
        History.from_ops([get("1", 0, "x", None, 0.0, 1.0, found=True)])
    )
    # found=True with value None: legal only if someone wrote None — nobody
    # did, and "unwritten" must not compare equal to the None value.
    assert report.ok is False
