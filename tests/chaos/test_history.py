"""History recording, serialization round trips, and timeline rendering."""

import json

from repro.chaos import History, OpRecord, render_html, render_text
from repro.chaos.history import GET, PUT


def sample_history():
    history = History(epoch=0.0)
    w = history.begin(0, PUT, "x", "a")
    history.complete_put(w, 3)
    r = history.begin(1, GET, "x")
    history.complete_get(r, True, "a", 3)
    lost = history.begin(0, PUT, "x", "b")
    history.ambiguous(lost)
    failed = history.begin(2, GET, "y")
    history.fail(failed)
    return history


class TestRecording:
    def test_begin_assigns_ids_and_clock(self):
        history = History(epoch=0.0)
        first = history.begin(0, PUT, "k", 1)
        second = history.begin(1, GET, "k")
        assert first.op_id != second.op_id
        assert second.inv >= first.inv >= 0.0
        assert first.open and second.open

    def test_complete_put_closes_op(self):
        history = History(epoch=0.0)
        op = history.begin(0, PUT, "k", 1)
        history.complete_put(op, 7)
        assert not op.open and op.ok and op.index == 7
        assert op.ret >= op.inv

    def test_ambiguous_put_stays_open(self):
        history = sample_history()
        opens = history.open_ops()
        assert len(opens) == 1
        assert opens[0].kind == PUT and opens[0].value == "b"
        assert opens[0].ok is None

    def test_failed_get_is_closed_not_ok(self):
        history = sample_history()
        failed = [op for op in history.ops if op.ok is False]
        assert len(failed) == 1 and failed[0].kind == GET

    def test_per_key_sorts_by_invocation(self):
        history = sample_history()
        groups = history.per_key()
        assert set(groups) == {"x", "y"}
        invs = [op.inv for op in groups["x"]]
        assert invs == sorted(invs)


class TestSerialization:
    def test_jsonl_round_trip(self):
        history = sample_history()
        text = history.to_jsonl()
        back = History.from_jsonl(text)
        assert len(back) == len(history)
        for original, restored in zip(history.ops, back.ops):
            assert restored.to_dict() == original.to_dict()

    def test_jsonl_lines_are_json(self):
        for line in sample_history().to_jsonl().strip().splitlines():
            record = json.loads(line)
            assert {"op_id", "kind", "key", "inv"} <= set(record)

    def test_from_ops(self):
        ops = sample_history().ops
        assert History.from_ops(ops).ops == ops


class TestTimeline:
    def test_text_timeline_shows_all_clients(self):
        art = render_text(sample_history().ops)
        assert "c0" in art and "c1" in art and "c2" in art
        assert "put('x','a')" in art
        # The ambiguous put renders as open-ended.
        assert "put('x','b')?" in art

    def test_text_timeline_empty(self):
        assert render_text([]) == "(empty history)"

    def test_html_timeline_is_self_contained(self):
        ops = sample_history().ops
        page = render_html(
            ops,
            title="t<itle>",
            faults=[(ops[0].inv, "partition")],
            highlight=[ops[0]],
        )
        assert page.startswith("<!doctype html>")
        assert "t&lt;itle&gt;" in page  # titles are escaped
        assert "partition" in page
        assert 'class="op bad"' in page or "bad" in page
        assert "http" not in page.split("</style>")[0]  # no external assets

    def test_html_timeline_empty(self):
        assert "(empty history)" in render_html([])
