"""One conformance harness, every consensus engine.

The engine seam (:mod:`repro.live.engine`) promises that ``raft``,
``paxos`` and ``ct`` are interchangeable behind the node contract the KV
layer consumes.  This suite is that promise, executable: every scenario
— election, commit, duplicate proposals, follower redirect, crash +
restart from a data directory — runs identically against all three
backends via ``pytest.mark.parametrize``.  A new engine earns its place
in :data:`repro.live.engine.ENGINES` by passing this file unmodified.
"""

import asyncio
import itertools

import pytest

from repro.algorithms.raft.messages import ClientPropose
from repro.live import (
    ENGINES,
    AsyncKVClient,
    EngineError,
    LiveKVCluster,
    get_engine,
    parse_engine_spec,
)
from repro.live.kv import KvBatch

FAST = dict(election_timeout=(0.15, 0.3), heartbeat_interval=0.05)

ENGINE_NAMES = sorted(ENGINES)  # ct, paxos, raft


def run(coro, timeout=120.0):
    return asyncio.run(asyncio.wait_for(coro, timeout))


async def _get_via(cluster, pid, key):
    probe = AsyncKVClient(cluster.cluster)
    probe._target = cluster.cluster[pid].client_addr
    try:
        return await probe.get(key)
    finally:
        await probe.close()


class TestEngineRegistry:
    def test_wire_families_are_pairwise_disjoint(self):
        # Self-describing frames rely on no message class being claimed
        # by two engines.
        for a, b in itertools.combinations(ENGINE_NAMES, 2):
            overlap = ENGINES[a].wire_classes & ENGINES[b].wire_classes
            assert not overlap, (a, b, overlap)

    def test_accepts_matches_wire_family(self):
        raft, paxos = get_engine("raft"), get_engine("paxos")
        sample = next(iter(paxos.wire_classes))
        assert not raft.accepts(sample.__new__(sample))
        assert paxos.accepts(sample.__new__(sample))

    def test_parse_spec_single_name_covers_all_shards(self):
        engines = parse_engine_spec("ct", 3)
        assert [e.name for e in engines] == ["ct", "ct", "ct"]

    def test_parse_spec_per_shard_list(self):
        engines = parse_engine_spec("raft,ct", 2)
        assert [e.name for e in engines] == ["raft", "ct"]

    def test_parse_spec_errors(self):
        with pytest.raises(EngineError):
            parse_engine_spec("raft,ct", 3)  # count mismatch
        with pytest.raises(EngineError):
            parse_engine_spec("zab", 1)  # unknown engine
        with pytest.raises(EngineError):
            parse_engine_spec("", 1)  # empty


@pytest.mark.parametrize("engine", ENGINE_NAMES)
class TestEngineConformance:
    def test_elects_single_leader_and_commits(self, engine):
        async def scenario():
            cluster = LiveKVCluster(3, seed=31, engine=engine, **FAST)
            await cluster.start()
            try:
                leader = await cluster.wait_for_leader(timeout=20.0)
                believers = [
                    s.pid for s in cluster.servers if s.shards[0].is_leader
                ]
                assert believers == [leader]
                client = AsyncKVClient(cluster.cluster)
                index = await client.put("alpha", "beta")
                assert index >= 1
                response = await client.get("alpha")
                assert response["found"] and response["value"] == "beta"
                lin = await client.get("alpha", linearizable=True)
                assert lin["found"] and lin["value"] == "beta"
                status = await client.status()
                assert status["engine"] == engine
                assert status["commit_index"] >= index
                await client.close()
            finally:
                await cluster.stop()

        run(scenario())

    def test_duplicate_proposal_applies_once(self, engine):
        async def scenario():
            cluster = LiveKVCluster(3, seed=32, engine=engine, **FAST)
            await cluster.start()
            try:
                leader = await cluster.wait_for_leader(timeout=20.0)
                shard = cluster.servers[leader].shards[0]
                batch = KvBatch((), batch_id=("dup-test", 0))
                proposal = ClientPropose(batch.batch_id, batch)
                shard.runtime.inject(proposal)
                shard.runtime.inject(proposal)  # client retry, same id
                client = AsyncKVClient(cluster.cluster)
                await client.put("after-dup", 1)  # forces commit progress
                await client.close()
                applied = [
                    detail
                    for _pid, _t, detail in shard.runtime.trace.annotations(
                        "applied"
                    )
                    if getattr(detail[2], "batch_id", None) == batch.batch_id
                ]
                assert len(applied) == 1, applied
            finally:
                await cluster.stop()

        run(scenario())

    def test_follower_redirects_to_leader(self, engine):
        async def scenario():
            cluster = LiveKVCluster(3, seed=33, engine=engine, **FAST)
            await cluster.start()
            try:
                leader = await cluster.wait_for_leader(timeout=20.0)
                follower = next(pid for pid in range(3) if pid != leader)
                client = AsyncKVClient(cluster.cluster)
                client._target = cluster.cluster[follower].client_addr
                index = await client.put("via-follower", "ok")
                assert index >= 1
                status = await client.status()
                assert status["pid"] == leader
                await client.close()
            finally:
                await cluster.stop()

        run(scenario())

    def test_leader_crash_keeps_acked_writes(self, engine):
        async def scenario():
            cluster = LiveKVCluster(3, seed=34, engine=engine, **FAST)
            await cluster.start()
            try:
                leader = await cluster.wait_for_leader(timeout=20.0)
                client = AsyncKVClient(cluster.cluster)
                acked = {}
                for i in range(20):
                    key = f"k{i % 5}"
                    await client.put(key, f"v{i}")
                    acked[key] = f"v{i}"
                await cluster.kill(leader)
                new_leader = await cluster.wait_for_leader(
                    timeout=30.0, exclude=(leader,)
                )
                assert new_leader != leader
                for key, value in acked.items():
                    response = await _get_via(cluster, new_leader, key)
                    assert response["found"] and response["value"] == value
                await client.close()
            finally:
                await cluster.stop()

        run(scenario())

    def test_crash_restart_recovers_from_data_dir(self, engine, tmp_path):
        async def scenario():
            cluster = LiveKVCluster(
                3, seed=35, engine=engine, data_dir=str(tmp_path), **FAST
            )
            await cluster.start()
            try:
                leader = await cluster.wait_for_leader(timeout=20.0)
                client = AsyncKVClient(cluster.cluster)
                for i in range(10):
                    await client.put(f"d{i}", i)
                await cluster.kill(leader)
                await cluster.wait_for_leader(timeout=30.0, exclude=(leader,))
                await client.put("post-crash", "yes")
                restarted = await cluster.restart(leader)
                # The replacement recovered its durable epoch from disk
                # (non-zero before any new leadership contact is needed).
                assert restarted.shards[0].node.current_term > 0
                deadline = asyncio.get_event_loop().time() + 20.0
                target = max(
                    s.shards[0].node.last_applied
                    for s in cluster.servers
                    if s is not None and s.pid != leader
                )
                while asyncio.get_event_loop().time() < deadline:
                    if restarted.shards[0].node.last_applied >= target:
                        break
                    await asyncio.sleep(0.05)
                assert restarted.shards[0].node.last_applied >= target
                response = await _get_via(cluster, leader, "d7")
                assert response["found"] and response["value"] == 7
                await client.close()
            finally:
                await cluster.stop()

        run(scenario())


@pytest.mark.parametrize("engine", ENGINE_NAMES)
class TestReadTierConformance:
    """The fast read tiers are part of the node contract: every engine
    must answer ReadIndex rounds, honour leases, and prove freshness."""

    def test_readindex_serves_without_log_growth(self, engine):
        async def scenario():
            cluster = LiveKVCluster(
                3, seed=41, engine=engine, read_tier="readindex", **FAST
            )
            await cluster.start()
            try:
                leader = await cluster.wait_for_leader(timeout=20.0)
                client = AsyncKVClient(cluster.cluster)
                await client.put("ri", "v1")
                await client.close()
                server = cluster.servers[leader]
                shard = server.shards[0]
                before_log = shard.node.log.last_index
                before_rounds = shard._ri_counter
                responses = await asyncio.gather(*(
                    server._serve(
                        {"type": "get", "key": "ri", "lin": True,
                         "id": f"r{i}", "tier": "readindex"}
                    )
                    for i in range(6)
                ))
                for response in responses:
                    assert response["type"] == "value", response
                    assert response["value"] == "v1"
                    assert response.get("read") == "readindex"
                # The batch shared probe rounds (first read opens one,
                # the rest join the next) and wrote nothing to the log.
                assert shard._ri_counter - before_rounds <= 2
                assert shard.node.log.last_index == before_log
            finally:
                await cluster.stop()

        run(scenario())

    def test_lease_reads_refuse_after_expiry(self, engine):
        async def scenario():
            cluster = LiveKVCluster(
                3, seed=42, engine=engine, read_tier="lease", **FAST
            )
            await cluster.start()
            try:
                leader = await cluster.wait_for_leader(timeout=20.0)
                client = AsyncKVClient(cluster.cluster)
                await client.put("lease-key", "v1")
                await client.close()
                server = cluster.servers[leader]
                shard = server.shards[0]
                # Renewal rounds establish the lease within a heartbeat
                # or two; a lease read then touches no peer.
                deadline = asyncio.get_event_loop().time() + 5.0
                while not shard.lease_serveable():
                    assert asyncio.get_event_loop().time() < deadline
                    await asyncio.sleep(0.02)
                response = await server._serve(
                    {"type": "get", "key": "lease-key", "lin": True,
                     "id": "l1", "tier": "lease"}
                )
                assert response["type"] == "value" and response["value"] == "v1"
                assert response.get("read") == "lease"
                # Kill the followers: renewals can no longer complete, so
                # the lease must lapse within its window (plus drift) even
                # though the leader still *believes* it leads.
                for pid in range(3):
                    if pid != leader:
                        await cluster.kill(pid)
                await asyncio.sleep(
                    server.lease_duration + server.drift_bound + 0.2
                )
                assert not shard.lease_serveable()
                server.commit_timeout = 0.5  # keep the refusal quick
                refused = await server._serve(
                    {"type": "get", "key": "lease-key", "lin": True,
                     "id": "l2", "tier": "lease"}
                )
                # Without a quorum the fallback ReadIndex round cannot
                # complete either: the read times out instead of serving
                # possibly-stale state.
                assert refused["type"] == "error", refused
            finally:
                await cluster.stop()

        run(scenario())

    def test_follower_reads_respect_staleness_bound(self, engine):
        async def scenario():
            cluster = LiveKVCluster(
                3, seed=43, engine=engine, read_tier="follower", **FAST
            )
            await cluster.start()
            try:
                leader = await cluster.wait_for_leader(timeout=20.0)
                client = AsyncKVClient(cluster.cluster)
                await client.put("f-key", "v1")
                follower = next(pid for pid in range(3) if pid != leader)
                server = cluster.servers[follower]
                # Freshness proofs ride the lease renewals: the follower
                # becomes serveable within a heartbeat or two.
                deadline = asyncio.get_event_loop().time() + 5.0
                while server.shards[0].staleness() > 0.5:
                    assert asyncio.get_event_loop().time() < deadline
                    await asyncio.sleep(0.02)
                response = await server._serve(
                    {"type": "get", "key": "f-key", "staleness": 5.0}
                )
                assert response["type"] == "value" and response["value"] == "v1"
                assert response.get("read") == "follower"
                assert 0.0 <= response["staleness"] <= 0.5
                # An unmeetable bound is refused, not silently stretched.
                refused = await server._serve(
                    {"type": "get", "key": "f-key", "staleness": 1e-9}
                )
                assert refused["type"] == "error", refused
                assert refused["reason"] == "stale"
                # The client-side fan-out finds a serveable replica.
                fanned = await client.get("f-key", staleness=5.0)
                assert fanned["found"] and fanned["value"] == "v1"
                assert fanned.get("read") == "follower"
                await client.close()
            finally:
                await cluster.stop()

        run(scenario())


class TestWireIsolation:
    def test_foreign_frames_are_counted_and_dropped(self):
        async def scenario():
            cluster = LiveKVCluster(3, seed=36, engine="raft", **FAST)
            await cluster.start()
            try:
                leader = await cluster.wait_for_leader(timeout=20.0)
                runtime = cluster.servers[leader].shards[0].runtime
                foreign = get_engine("paxos")
                sample_cls = next(iter(foreign.wire_classes))
                frame = sample_cls.__new__(sample_cls)
                before = runtime.foreign_frames
                runtime._on_peer_message(1, frame, None)
                runtime._on_peer_message(1, frame, None)
                assert runtime.foreign_frames == before + 2
                client = AsyncKVClient(cluster.cluster)
                status = await client.status()
                assert status["groups"][0]["foreign_frames"] >= 2
                # The cluster shrugged it off: still serving.
                await client.put("still-alive", 1)
                await client.close()
            finally:
                await cluster.stop()

        run(scenario())

    def test_mixed_per_shard_engines_serve(self):
        async def scenario():
            cluster = LiveKVCluster(
                3, seed=37, shards=2, engine="raft,ct", **FAST
            )
            await cluster.start()
            try:
                await cluster.wait_for_all_leaders(timeout=30.0)
                client = AsyncKVClient(cluster.cluster, shards=2)
                for i in range(12):
                    await client.put(f"mix{i}", i)
                for i in range(12):
                    response = await client.get(f"mix{i}")
                    assert response["found"] and response["value"] == i
                status = await client.status()
                engines = {g["shard"]: g["engine"] for g in status["groups"]}
                assert engines == {0: "raft", 1: "ct"}
                await client.close()
            finally:
                await cluster.stop()

        run(scenario())
