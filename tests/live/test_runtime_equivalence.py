"""AsyncioRuntime and SimRuntime run the *same* production stack.

The runtime seam's correctness claim: code refactored onto
:mod:`repro.core.runtime` behaves identically whether scheduled by real
asyncio over localhost TCP or by the virtual-time simulator over memory
streams.  A scripted client workload against a 3-node × 2-shard cluster
must produce the same client-visible results — per-key values, found
flags, and redirect-following success — under both runtimes.
"""

import asyncio

import pytest

from repro.core.runtime import AsyncioRuntime, SimRuntime
from repro.live.client import AsyncKVClient
from repro.live.harness import LiveKVCluster

FAST = dict(election_timeout=(0.15, 0.3), heartbeat_interval=0.05)

#: The scripted workload: (op, key, value) — deterministic, order fixed.
SCRIPT = (
    ("put", "alpha", "1"),
    ("put", "beta", "2"),
    ("get", "alpha", None),
    ("put", "alpha", "3"),  # overwrite
    ("get", "alpha", None),
    ("get", "beta", None),
    ("get", "missing", None),
    ("put", "gamma", "4"),
    ("get", "gamma", None),
)


async def _run_script(runtime):
    cluster = LiveKVCluster(3, seed=5, shards=2, runtime=runtime, **FAST)
    client = AsyncKVClient(
        cluster.cluster, shards=2, op_id_prefix="eq", runtime=runtime
    )
    results = []
    try:
        await cluster.start()
        await cluster.wait_for_all_leaders(10.0)
        for op, key, value in SCRIPT:
            if op == "put":
                index = await client.put(key, value)
                results.append(("put", key, index > 0))
            else:
                response = await client.get(key, linearizable=True)
                results.append(
                    ("get", key, response.get("found"), response.get("value"))
                )
    finally:
        await client.close()
        await cluster.stop()
    return results


def test_scripted_workload_is_equivalent_across_runtimes():
    live = asyncio.run(asyncio.wait_for(_run_script(AsyncioRuntime()), 60.0))
    sim_rt = SimRuntime()
    try:
        sim = sim_rt.run(_run_script(sim_rt), timeout=60.0)
    finally:
        sim_rt.close()
    assert live == sim
    # And the script actually exercised both paths meaningfully.
    assert ("get", "alpha", True, "3") in sim
    assert ("get", "missing", False, None) in sim


def test_sim_runtime_is_fast():
    """Virtual time is the point: the whole boot-elect-serve-stop cycle
    must not consume wall-clock sleeps."""
    import time

    sim_rt = SimRuntime()
    start = time.monotonic()
    try:
        sim_rt.run(_run_script(sim_rt), timeout=60.0)
    finally:
        sim_rt.close()
    assert time.monotonic() - start < 5.0
