"""Load-generator key distributions (pure sampling — no sockets)."""

import math
import random

import pytest

from repro.live import ZipfSampler, make_key_sampler


class TestZipfSampler:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            ZipfSampler(0)
        with pytest.raises(ValueError):
            ZipfSampler(10, s=0.0)
        with pytest.raises(ValueError):
            ZipfSampler(10, s=-1.0)

    def test_probabilities_sum_to_one(self):
        sampler = ZipfSampler(200, s=1.1)
        total = sum(sampler.probability(r) for r in range(200))
        assert math.isclose(total, 1.0, rel_tol=1e-12)

    def test_deterministic_under_seed(self):
        a = [ZipfSampler(64, s=1.3).sample(random.Random(9)) for _ in range(50)]
        b = [ZipfSampler(64, s=1.3).sample(random.Random(9)) for _ in range(50)]
        assert a == b

    def test_samples_stay_in_range(self):
        sampler = ZipfSampler(32, s=2.0)
        rng = random.Random(1)
        draws = [sampler.sample(rng) for _ in range(2000)]
        assert min(draws) >= 0 and max(draws) < 32

    def test_empirical_distribution_matches_theory(self):
        # 30k draws over 100 ranks: every rank with non-trivial mass must
        # land within a few standard errors of its exact probability.
        n, s, draws = 100, 1.1, 30_000
        sampler = ZipfSampler(n, s)
        rng = random.Random(1234)
        counts = [0] * n
        for _ in range(draws):
            counts[sampler.sample(rng)] += 1
        for rank in range(n):
            p = sampler.probability(rank)
            if p < 1e-3:
                continue
            se = math.sqrt(p * (1 - p) / draws)
            observed = counts[rank] / draws
            assert abs(observed - p) < 5 * se, (rank, observed, p)

    def test_skew_orders_the_head(self):
        # Rank 0 is drawn more often than rank 9, which beats rank 49;
        # higher s sharpens the head.
        rng = random.Random(7)
        mild, steep = ZipfSampler(64, s=1.01), ZipfSampler(64, s=1.8)
        mild_counts, steep_counts = [0] * 64, [0] * 64
        for _ in range(20_000):
            mild_counts[mild.sample(rng)] += 1
            steep_counts[steep.sample(rng)] += 1
        assert mild_counts[0] > mild_counts[9] > mild_counts[49]
        assert steep_counts[0] > mild_counts[0]


class TestMakeKeySampler:
    def test_uniform_covers_the_keyspace(self):
        sample = make_key_sampler("uniform", 8)
        rng = random.Random(3)
        seen = {sample(rng) for _ in range(500)}
        assert seen == {f"k{i}" for i in range(8)}

    def test_zipf_prefers_low_ranks(self):
        sample = make_key_sampler("zipf", 1000, zipf_s=1.5)
        rng = random.Random(3)
        draws = [sample(rng) for _ in range(2000)]
        assert all(d.startswith("k") for d in draws)
        head = sum(1 for d in draws if int(d[1:]) < 10)
        assert head > len(draws) * 0.5  # the head dominates under skew

    def test_unknown_distribution_rejected(self):
        with pytest.raises(ValueError, match="unknown key distribution"):
            make_key_sampler("pareto", 10)
