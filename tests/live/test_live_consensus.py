"""Unmodified simulator processes reaching consensus over real TCP.

The acceptance bar for the live runtime: the exact coroutines the
discrete-event simulators drive (`ben_or_template_consensus`, the full
`RaftNode`) run to decision on a multi-process localhost cluster, and the
recorded traces satisfy the same Section-2 property checkers.
"""

import asyncio

import pytest

from repro.algorithms.ben_or import ben_or_template_consensus
from repro.algorithms.raft import RaftNode, check_raft_vac
from repro.core.properties import (
    check_agreement,
    check_all_rounds,
    check_termination,
    check_validity,
)
from repro.live import LiveCluster, derive_process_seed
from repro.sim import trace as tr
from repro.sim.async_runtime import AsyncRuntime


def run(coro, timeout=60.0):
    return asyncio.run(asyncio.wait_for(coro, timeout))


async def _run_cluster(processes, inits, seed, decide_timeout=30.0):
    cluster = LiveCluster(processes, init_values=inits, seed=seed)
    await cluster.start()
    try:
        decisions = await cluster.await_decisions(timeout=decide_timeout)
    finally:
        await cluster.stop()
    return decisions, cluster.merged_trace()


class TestBenOrLive:
    def test_three_nodes_decide_and_satisfy_properties(self):
        inits = [0, 1, 0]
        decisions, trace = run(_run_cluster(
            [ben_or_template_consensus() for _ in range(3)], inits, seed=7
        ))
        check_agreement(decisions)
        check_validity(decisions, inits)
        check_termination(decisions, range(3))
        check_all_rounds(trace, "vac")

    def test_unanimous_input_decides_that_value(self):
        inits = [1, 1, 1]
        decisions, _trace = run(_run_cluster(
            [ben_or_template_consensus() for _ in range(3)], inits, seed=1
        ))
        assert set(decisions.values()) == {1}

    def test_trace_has_live_event_kinds(self):
        inits = [0, 1, 0]
        _decisions, trace = run(_run_cluster(
            [ben_or_template_consensus() for _ in range(3)], inits, seed=7
        ))
        kinds = {event.kind for event in trace.events}
        # HALT is absent by design: the harness stops nodes right after
        # they decide, before the generators run to completion.
        assert {tr.SEND, tr.DELIVER, tr.DECIDE, tr.ANNOTATE, tr.CONNECT} <= kinds
        # Wall-clock times since the shared epoch: non-negative and ordered.
        times = [event.time for event in trace.events]
        assert times == sorted(times)
        assert all(t >= 0 for t in times)


class TestRaftLive:
    def test_three_nodes_elect_and_decide(self):
        inits = [10, 20, 30]
        nodes = [
            RaftNode(election_timeout=(0.15, 0.3), heartbeat_interval=0.05)
            for _ in range(3)
        ]
        decisions, trace = run(_run_cluster(nodes, inits, seed=3))
        check_agreement(decisions)
        check_validity(decisions, inits)
        check_termination(decisions, range(3))
        check_raft_vac(trace)
        leaders = list(trace.annotations("leader"))
        assert leaders, "expected at least one leader annotation"

    def test_decision_times_are_seconds(self):
        nodes = [
            RaftNode(election_timeout=(0.15, 0.3), heartbeat_interval=0.05)
            for _ in range(3)
        ]
        _decisions, trace = run(_run_cluster(nodes, [1, 2, 3], seed=5))
        latencies = trace.decision_times()
        assert len(latencies) == 3
        # Live clusters decide in wall-clock seconds — well under a minute,
        # far below the simulator's virtual-time scales.
        assert all(0 < latency < 60 for latency in latencies.values())


class TestSeedDerivation:
    def test_matches_async_runtime(self):
        """Live process randomness is the same function of (seed, pid)."""
        processes = [ben_or_template_consensus() for _ in range(4)]
        runtime = AsyncRuntime(
            processes, init_values=[0, 1, 0, 1], t=1, seed=42, max_time=10.0
        )
        # AsyncRuntime derives per-process seeds at construction; compare
        # the first random draw of each process RNG.
        import random as random_module

        master = random_module.Random(42)
        expected = [master.randrange(2**63) for _ in range(4)]
        for pid in range(4):
            assert derive_process_seed(42, pid, 4) == expected[pid]
