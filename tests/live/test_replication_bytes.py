"""Replication cost on the wire stays linear as the pipeline deepens.

Delta replication's observable guarantee at the transport level: the
leader ships each committed entry roughly once, so the peer-link bytes
per committed entry must be about the same at ``max_inflight=16`` as at
``max_inflight=2``.  Before the per-follower cursors, every AppendEntries
resent the whole unacknowledged suffix — bytes per entry then grow
roughly linearly with the pipeline depth, which is exactly what this
test rejects.
"""

import asyncio

from repro.live import LiveKVCluster, run_closed_loop

FAST = dict(election_timeout=(0.15, 0.3), heartbeat_interval=0.05)


def run(coro, timeout=120.0):
    return asyncio.run(asyncio.wait_for(coro, timeout))


def _totals(cluster):
    bytes_sent = sum(
        server.runtime.transport.stats.bytes_sent
        for server in cluster.servers
        if server is not None
    )
    commit = max(
        server.node.commit_index
        for server in cluster.servers
        if server is not None
    )
    return bytes_sent, commit


async def _bytes_per_entry(max_inflight, *, seed):
    cluster = LiveKVCluster(3, seed=seed, max_inflight=max_inflight, **FAST)
    await cluster.start()
    try:
        await cluster.wait_for_leader(timeout=15.0)
        bytes_before, commit_before = _totals(cluster)
        report = await run_closed_loop(
            cluster.cluster, ops=120, concurrency=16, value_size=64, seed=seed
        )
        bytes_after, commit_after = _totals(cluster)
    finally:
        await cluster.stop()
    assert report.errors == 0, report.summary()
    entries = commit_after - commit_before
    assert entries > 0
    return (bytes_after - bytes_before) / entries


class TestReplicationBytesLinear:
    def test_bytes_per_entry_flat_across_pipeline_depths(self):
        shallow = run(_bytes_per_entry(2, seed=21))
        deep = run(_bytes_per_entry(16, seed=22))
        # Full-suffix resends would make the deep pipeline several times
        # costlier per entry; delta replication keeps the two comparable.
        assert deep <= shallow * 3.0, (shallow, deep)
        # Sanity floor: both configurations actually replicated data.
        assert shallow > 0 and deep > 0
