"""Replicated KV service tests: batching, redirects, leader failover.

`test_leader_kill_loses_no_acked_write` is the CI smoke's core guarantee:
every write acknowledged before the leader is killed must be readable
after re-election, because acks only happen on majority commit.

The timing-heavy failover tests run under
:class:`~repro.core.runtime.SimRuntime`: identical production code, but
elections, retry backoffs and leader waits burn *virtual* seconds — the
tests are faster and cannot flake on a loaded CI box.  The rest stay on
real asyncio/TCP so this file keeps covering both sides of the seam.
"""

import asyncio

import pytest

from repro.core.runtime import SimRuntime
from repro.live import (
    AsyncKVClient,
    ClusterUnavailableError,
    LiveKVCluster,
    run_closed_loop,
)

FAST = dict(election_timeout=(0.15, 0.3), heartbeat_interval=0.05)


def run(coro, timeout=120.0):
    return asyncio.run(asyncio.wait_for(coro, timeout))


def sim_run(coro, timeout=120.0):
    """Run a scenario in virtual time; ``timeout`` is virtual seconds.

    ``SimRuntime.run`` installs the runtime as the ambient default, so
    scenario bodies build clusters and clients exactly as the asyncio
    tests do — no plumbing changes, which is the point of the seam.
    """
    rt = SimRuntime()
    try:
        return rt.run(coro, timeout=timeout)
    finally:
        rt.close()


async def _read_from_leader(cluster, client, key):
    """Read via the leader so the check is not racing replication lag."""
    leader = await cluster.wait_for_leader(timeout=15.0)
    return await client.status_of(leader), await _get_via(cluster, leader, key)


async def _get_via(cluster, pid, key):
    probe = AsyncKVClient(cluster.cluster)
    probe._target = cluster.cluster[pid].client_addr
    try:
        return await probe.get(key)
    finally:
        await probe.close()


class TestBasicService:
    def test_put_get_and_status(self):
        async def scenario():
            cluster = LiveKVCluster(3, seed=11, **FAST)
            await cluster.start()
            try:
                await cluster.wait_for_leader(timeout=15.0)
                client = AsyncKVClient(cluster.cluster)
                index = await client.put("alpha", "beta")
                assert index >= 1
                response = await client.get("alpha")
                assert response["found"] and response["value"] == "beta"
                status = await client.status()
                assert status["n"] == 3 and status["commit_index"] >= index
                await client.close()
            finally:
                await cluster.stop()

        run(scenario())

    def test_batching_many_concurrent_puts(self):
        async def scenario():
            cluster = LiveKVCluster(3, seed=12, **FAST)
            await cluster.start()
            try:
                leader = await cluster.wait_for_leader(timeout=15.0)
                clients = [AsyncKVClient(cluster.cluster) for _ in range(8)]
                await asyncio.gather(*(
                    client.put(f"key-{i}", i)
                    for i, client in enumerate(clients)
                ))
                server = cluster.servers[leader]
                # 8 concurrent puts must not take 8 separate log entries:
                # the barrier no-op plus at most a handful of batches.
                assert server.node.commit_index < 9
                response = await clients[0].get("key-3")
                assert response["value"] == 3
                for client in clients:
                    await client.close()
            finally:
                await cluster.stop()

        run(scenario())

    def test_follower_redirects_to_leader(self):
        async def scenario():
            cluster = LiveKVCluster(3, seed=13, **FAST)
            await cluster.start()
            try:
                leader = await cluster.wait_for_leader(timeout=15.0)
                follower = next(
                    pid for pid in range(3) if pid != leader
                )
                client = AsyncKVClient(cluster.cluster)
                # Pin the first connection to a follower: the put must
                # still succeed via the redirect.
                client._target = cluster.cluster[follower].client_addr
                index = await client.put("via-follower", "ok")
                assert index >= 1
                status = await client.status()
                assert status["pid"] == leader
                await client.close()
            finally:
                await cluster.stop()

        run(scenario())


class TestFailover:
    def test_leader_kill_loses_no_acked_write(self):
        async def scenario():
            cluster = LiveKVCluster(3, seed=1, **FAST)
            await cluster.start()
            try:
                leader = await cluster.wait_for_leader(timeout=15.0)
                client = AsyncKVClient(cluster.cluster)
                acked = {}
                for i in range(50):
                    key = f"k{i % 10}"
                    await client.put(key, f"v{i}")
                    acked[key] = f"v{i}"

                await cluster.kill(leader)
                new_leader = await cluster.wait_for_leader(
                    timeout=20.0, exclude=(leader,)
                )
                assert new_leader != leader

                # The cluster keeps accepting writes with 2/3 nodes up.
                for i in range(50, 60):
                    key = f"k{i % 10}"
                    await client.put(key, f"v{i}")
                    acked[key] = f"v{i}"

                lost = []
                for key, value in acked.items():
                    response = await _get_via(cluster, new_leader, key)
                    if not response["found"] or response["value"] != value:
                        lost.append((key, value))
                assert not lost, f"acked writes lost after failover: {lost}"
                await client.close()
            finally:
                await cluster.stop()

        sim_run(scenario())

    def test_all_nodes_down_is_unavailable(self):
        async def scenario():
            cluster = LiveKVCluster(3, seed=2, **FAST)
            await cluster.start()
            await cluster.stop()
            client = AsyncKVClient(
                cluster.cluster, max_attempts=3, retry_delay=0.05,
                request_timeout=0.5,
            )
            with pytest.raises(ClusterUnavailableError):
                await client.put("k", "v")
            await client.close()

        sim_run(scenario())


class TestLoadgen:
    def test_closed_loop_reports_all_ops(self):
        async def scenario():
            cluster = LiveKVCluster(3, seed=21, **FAST)
            await cluster.start()
            try:
                await cluster.wait_for_leader(timeout=15.0)
                report = await run_closed_loop(
                    cluster.cluster, ops=60, concurrency=4, seed=3
                )
                assert report.ops + report.errors == 60
                assert report.errors == 0
                assert report.throughput > 0
                summary = report.latency
                assert summary["count"] == 60
                assert 0 < summary["p50"] <= summary["p95"] <= summary["max"]
                # Every acknowledged write is durable and readable.
                client = AsyncKVClient(cluster.cluster)
                for key, value in list(report.acked.items())[:5]:
                    response = await client.get(key)
                    assert response["found"]
                await client.close()
            finally:
                await cluster.stop()

        run(scenario())
