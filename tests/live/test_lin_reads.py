"""Linearizable reads: the read-as-log-entry path.

A ``get(..., linearizable=True)`` is folded into the write batch pipeline
as a :class:`~repro.live.kv.KvRead` marker and answered at apply time, so
it reflects every write committed before it — unlike the default local
read, which may lag on a follower.
"""

import asyncio

from repro.live import AsyncKVClient, LiveKVCluster

FAST = dict(election_timeout=(0.15, 0.3), heartbeat_interval=0.05)


def run(coro, timeout=120.0):
    return asyncio.run(asyncio.wait_for(coro, timeout))


class TestLinearizableReads:
    def test_lin_read_sees_every_acked_write(self):
        async def scenario():
            cluster = LiveKVCluster(3, seed=41, **FAST)
            await cluster.start()
            client = AsyncKVClient(cluster.cluster)
            try:
                await cluster.wait_for_leader(timeout=15.0)
                for i in range(5):
                    await client.put("counter", i)
                    response = await client.get("counter", linearizable=True)
                    assert response["found"] and response["value"] == i
                    assert response.get("lin") is True
            finally:
                await client.close()
                await cluster.stop()

        run(scenario())

    def test_lin_read_of_missing_key(self):
        async def scenario():
            cluster = LiveKVCluster(3, seed=42, **FAST)
            await cluster.start()
            client = AsyncKVClient(cluster.cluster)
            try:
                await cluster.wait_for_leader(timeout=15.0)
                await client.put("exists", 1)  # commit something first
                response = await client.get("missing", linearizable=True)
                assert response["found"] is False
                assert response["value"] is None
            finally:
                await client.close()
                await cluster.stop()

        run(scenario())

    def test_lin_read_routes_to_owning_shard_leader(self):
        async def scenario():
            cluster = LiveKVCluster(3, seed=43, shards=2, **FAST)
            await cluster.start()
            client = AsyncKVClient(cluster.cluster, shards=2)
            try:
                await cluster.wait_for_all_leaders(20.0)
                for i in range(6):
                    key = f"spread-{i}"  # keys land on both shards
                    await client.put(key, i)
                    response = await client.get(key, linearizable=True)
                    assert response["value"] == i
                    assert response["shard"] == client._router.shard_of(key)
            finally:
                await client.close()
                await cluster.stop()

        run(scenario())

    def test_lin_read_requires_op_id_at_server(self):
        async def scenario():
            cluster = LiveKVCluster(3, seed=44, **FAST)
            await cluster.start()
            try:
                leader = await cluster.wait_for_leader(timeout=15.0)
                server = cluster.servers[leader]
                response = await server._serve(
                    {"type": "get", "key": "k", "lin": True}
                )
                assert response["type"] == "error"
            finally:
                await cluster.stop()

        run(scenario())

    def test_kv_read_marker_is_a_noop_for_the_machine(self):
        async def scenario():
            cluster = LiveKVCluster(3, seed=45, **FAST)
            await cluster.start()
            client = AsyncKVClient(cluster.cluster)
            try:
                leader = await cluster.wait_for_leader(timeout=15.0)
                await client.put("k", "v")
                before = dict(cluster.servers[leader].node.machine.data)
                await client.get("k", linearizable=True)
                after = dict(cluster.servers[leader].node.machine.data)
                assert before == after  # the marker wrote nothing
            finally:
                await client.close()
                await cluster.stop()

        run(scenario())

    def test_unsafe_mode_answers_without_commit(self):
        """The injectable bug: local answer on mere belief of leadership.
        (Correct content on a healthy cluster — the *danger* is that a
        deposed leader would answer too; the chaos campaign pins that.)"""

        async def scenario():
            cluster = LiveKVCluster(3, seed=46, unsafe_lin_reads=True, **FAST)
            await cluster.start()
            client = AsyncKVClient(cluster.cluster)
            try:
                leader = await cluster.wait_for_leader(timeout=15.0)
                await client.put("k", "v")
                commit_before = cluster.servers[leader].node.commit_index
                response = await client.get("k", linearizable=True)
                assert response["value"] == "v"
                # No KvRead marker was committed for the read.
                assert (
                    cluster.servers[leader].node.commit_index == commit_before
                )
            finally:
                await client.close()
                await cluster.stop()

        run(scenario())
