"""Longer live-cluster soaks — opt in with ``pytest -m live``.

These run minutes of wall-clock traffic and repeated failovers; the quick
versions of the same scenarios live in ``test_kv_cluster.py`` and run in
the default suite.
"""

import asyncio

import pytest

from repro.algorithms.ben_or import ben_or_template_consensus
from repro.core.properties import check_agreement, check_validity
from repro.live import (
    AsyncKVClient,
    LiveCluster,
    LiveKVCluster,
    run_closed_loop,
    run_open_loop,
)

pytestmark = pytest.mark.live

FAST = dict(election_timeout=(0.15, 0.3), heartbeat_interval=0.05)


def run(coro, timeout=600.0):
    return asyncio.run(asyncio.wait_for(coro, timeout))


class TestConsensusSoak:
    def test_ben_or_many_seeds(self):
        """Live Ben-Or decides across many seeds and split inputs."""
        async def one(seed):
            inits = [seed % 2, (seed + 1) % 2, seed % 2]
            cluster = LiveCluster(
                [ben_or_template_consensus() for _ in range(3)],
                init_values=inits, seed=seed,
            )
            await cluster.start()
            try:
                decisions = await cluster.await_decisions(timeout=60.0)
            finally:
                await cluster.stop()
            check_agreement(decisions)
            check_validity(decisions, inits)

        async def scenario():
            for seed in range(10):
                await one(seed)

        run(scenario())

    def test_five_node_ben_or(self):
        async def scenario():
            inits = [0, 1, 0, 1, 1]
            cluster = LiveCluster(
                [ben_or_template_consensus() for _ in range(5)],
                init_values=inits, seed=9,
            )
            await cluster.start()
            try:
                decisions = await cluster.await_decisions(timeout=120.0)
            finally:
                await cluster.stop()
            check_agreement(decisions)
            check_validity(decisions, inits)

        run(scenario())


class TestKVSoak:
    def test_repeated_failover_preserves_every_acked_write(self):
        """Kill the leader twice under continuous writes.

        Two kills is the most a five-node cluster can absorb: a third
        would drop the survivors below quorum and no leader could ever
        be elected again (nodes do not persist state across restarts).
        """
        async def scenario():
            cluster = LiveKVCluster(5, seed=31, **FAST)
            await cluster.start()
            try:
                client = AsyncKVClient(cluster.cluster, max_attempts=60)
                acked = {}
                killed = []
                sequence = 0
                for round_no in range(2):
                    leader = await cluster.wait_for_leader(
                        timeout=30.0, exclude=tuple(killed)
                    )
                    for _ in range(40):
                        key = f"k{sequence % 25}"
                        await client.put(key, f"v{sequence}")
                        acked[key] = f"v{sequence}"
                        sequence += 1
                    await cluster.kill(leader)
                    killed.append(leader)

                survivor = await cluster.wait_for_leader(
                    timeout=30.0, exclude=tuple(killed)
                )
                probe = AsyncKVClient(cluster.cluster)
                probe._target = cluster.cluster[survivor].client_addr
                lost = []
                for key, value in acked.items():
                    response = await probe.get(key)
                    if not response["found"] or response["value"] != value:
                        lost.append((key, value))
                assert not lost, f"lost {len(lost)} acked writes: {lost[:5]}"
                await probe.close()
                await client.close()
            finally:
                await cluster.stop()

        run(scenario())

    def test_sustained_open_loop_latency(self):
        """An open-loop minute at moderate rate keeps tail latency sane."""
        async def scenario():
            cluster = LiveKVCluster(3, seed=32, **FAST)
            await cluster.start()
            try:
                await cluster.wait_for_leader(timeout=15.0)
                report = await run_open_loop(
                    cluster.cluster, rate=100.0, duration=30.0, seed=5
                )
                assert report.ops > 0
                # Shedding a few arrivals is fine; losing most is not.
                assert report.errors < report.ops / 10
                assert report.latency["p99"] < 5.0
            finally:
                await cluster.stop()

        run(scenario())

    def test_closed_loop_sustained_throughput(self):
        async def scenario():
            cluster = LiveKVCluster(3, seed=33, **FAST)
            await cluster.start()
            try:
                await cluster.wait_for_leader(timeout=15.0)
                report = await run_closed_loop(
                    cluster.cluster, ops=2000, concurrency=8, seed=6
                )
                assert report.ops == 2000 and report.errors == 0
                assert report.throughput > 50
            finally:
                await cluster.stop()

        run(scenario())
