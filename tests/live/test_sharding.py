"""Multi-group sharding: routing, leader placement, and live clusters."""

import asyncio

from repro.live import (
    AsyncKVClient,
    ClusterConfig,
    LiveKVCluster,
    ShardRouter,
    preferred_leader,
    shard_of,
    staggered_election_timeout,
)


def run(coro, timeout=60.0):
    return asyncio.run(asyncio.wait_for(coro, timeout))


class TestShardOf:
    def test_stable_across_processes_and_versions(self):
        # Hardcoded expectations: the hash is part of the wire contract
        # (clients and servers of any version must agree), so these values
        # may never change.
        expected = {
            ("alpha", 2): 0, ("alpha", 4): 0, ("alpha", 8): 4,
            ("beta", 2): 1, ("beta", 4): 1, ("beta", 8): 1,
            ("k0", 2): 1, ("k0", 4): 3, ("k0", 8): 3,
            ("k1", 2): 1, ("k1", 4): 1, ("k1", 8): 1,
            ("k2", 2): 0, ("k2", 4): 0, ("k2", 8): 4,
            ("k3", 2): 0, ("k3", 4): 2, ("k3", 8): 2,
            (7, 2): 1, (7, 4): 1, (7, 8): 5,
            (b"raw", 2): 0, (b"raw", 4): 0, (b"raw", 8): 4,
            (True, 2): 0, (True, 4): 2, (True, 8): 6,
            (None, 2): 0, (None, 4): 2, (None, 8): 6,
        }
        for (key, shards), want in expected.items():
            assert shard_of(key, shards) == want, (key, shards)

    def test_single_group_is_always_shard_zero(self):
        for key in ("a", 1, b"b", None):
            assert shard_of(key, 1) == 0
            assert shard_of(key, 0) == 0

    def test_distinct_types_hash_independently(self):
        # "1" vs 1 vs b"1" vs True must not be forced to collide by the
        # canonical encoding (they may still collide mod small S).
        digests = {shard_of(k, 1 << 30) for k in ("1", 1, b"1", True)}
        assert len(digests) == 4

    def test_balanced_over_random_keysets(self):
        import random

        rng = random.Random(42)
        for shards in (2, 4, 8):
            keys = [f"key-{rng.randrange(10**9)}" for _ in range(4000)]
            counts = [0] * shards
            for key in keys:
                counts[shard_of(key, shards)] += 1
            mean = len(keys) / shards
            for count in counts:
                # Binomial(4000, 1/S) stays well within 30% of the mean.
                assert 0.7 * mean < count < 1.3 * mean, counts

    def test_range_is_valid(self):
        for shards in (1, 2, 3, 5, 7, 16):
            for i in range(200):
                assert 0 <= shard_of(f"x{i}", shards) < shards


class TestLeaderPlacement:
    def test_preferred_leader_wraps(self):
        assert [preferred_leader(s, 3) for s in range(6)] == [0, 1, 2, 0, 1, 2]

    def test_preferred_node_keeps_base_range(self):
        base = (0.3, 0.6)
        assert staggered_election_timeout(base, 2, 2, 3) == base
        assert staggered_election_timeout(base, 4, 1, 3) == base

    def test_other_nodes_get_strictly_later_range(self):
        base = (0.3, 0.6)
        for shard in range(4):
            for pid in range(3):
                lo, hi = staggered_election_timeout(base, shard, pid, 3)
                if pid == shard % 3:
                    continue
                assert lo >= base[1]  # never overlaps the preferred range
                assert hi > lo


class TestShardRouter:
    def _cluster(self, n=3):
        return ClusterConfig.localhost(n)

    def test_defaults_to_preferred_leader(self):
        cluster = self._cluster()
        router = ShardRouter(cluster, 4)
        for shard in range(4):
            assert router.target(shard) == cluster[shard % 3].client_addr
            assert router.hint(shard) is None

    def test_note_leader_updates_only_that_shard(self):
        cluster = self._cluster()
        router = ShardRouter(cluster, 4)
        addr = cluster[2].client_addr
        router.note_leader(1, addr)
        assert router.target(1) == addr
        assert router.hint(1) == addr
        assert router.target(0) == cluster[0].client_addr
        assert router.hint(0) is None

    def test_note_failure_rotates_to_a_different_node(self):
        cluster = self._cluster()
        router = ShardRouter(cluster, 2)
        for _ in range(8):
            before = router.target(0)
            router.note_failure(0)
            assert router.target(0) != before
            # The other shard's routing is untouched by shard 0's failures.
            assert router.target(1) == cluster[1].client_addr

    def test_out_of_range_leader_note_ignored(self):
        cluster = self._cluster()
        router = ShardRouter(cluster, 2)
        router.note_leader(5, cluster[0].client_addr)
        router.note_leader(-1, cluster[0].client_addr)
        assert router.hint(0) is None and router.hint(1) is None

    def test_redirect_sequence_bookkeeping(self):
        # A redirect chain (fail, learn, fail, learn) leaves exactly the
        # last learned leader as the hint.
        cluster = self._cluster()
        router = ShardRouter(cluster, 3)
        router.note_failure(2)
        router.note_leader(2, cluster[0].client_addr)
        router.note_failure(2)
        router.note_leader(2, cluster[1].client_addr)
        assert router.target(2) == cluster[1].client_addr


class TestShardedCluster:
    """End-to-end: multiple Raft groups over one shared transport."""

    def test_puts_and_gets_across_shards(self):
        async def scenario():
            kv = LiveKVCluster(
                3, seed=11, shards=4,
                election_timeout=(0.1, 0.2), heartbeat_interval=0.03,
            )
            await kv.start()
            client = AsyncKVClient(kv.cluster)
            try:
                await kv.wait_for_all_leaders(20.0)
                items = {f"key-{i}": f"value-{i}" for i in range(40)}
                shards_hit = set()
                for key, value in items.items():
                    await client.put(key, value)
                    shards_hit.add(shard_of(key, 4))
                assert shards_hit == {0, 1, 2, 3}  # workload spans groups
                for key, value in items.items():
                    response = await client.get(key)
                    assert response["found"] and response["value"] == value
                    assert response["shard"] == shard_of(key, 4)
            finally:
                await client.close()
                await kv.stop()

        run(scenario())

    def test_client_discovers_shard_count(self):
        async def scenario():
            kv = LiveKVCluster(
                3, seed=3, shards=2,
                election_timeout=(0.1, 0.2), heartbeat_interval=0.03,
            )
            await kv.start()
            client = AsyncKVClient(kv.cluster)  # no shards= given
            try:
                await kv.wait_for_all_leaders(20.0)
                assert await client.shard_count() == 2
                status = await client.status()
                assert status["shards"] == 2
                assert len(status["groups"]) == 2
            finally:
                await client.close()
                await kv.stop()

        run(scenario())

    def test_leaders_are_staggered_across_nodes(self):
        async def scenario():
            kv = LiveKVCluster(
                3, seed=5, shards=3,
                election_timeout=(0.1, 0.2), heartbeat_interval=0.03,
            )
            await kv.start()
            try:
                leaders = await kv.wait_for_all_leaders(20.0)
                # On a clean start each shard's first leader is its
                # preferred node, so the three leaders are all distinct.
                assert leaders == {0: 0, 1: 1, 2: 2}
            finally:
                await kv.stop()

        run(scenario())

    def test_redirects_carry_the_shard_id(self):
        async def scenario():
            kv = LiveKVCluster(
                3, seed=7, shards=2,
                election_timeout=(0.1, 0.2), heartbeat_interval=0.03,
            )
            await kv.start()
            client = AsyncKVClient(kv.cluster, shards=2)
            try:
                await kv.wait_for_all_leaders(20.0)
                # Aim a request for shard 1's key at a node that does not
                # lead shard 1: the server must answer with a redirect
                # naming shard 1 and its leader, and the client's router
                # must land the write.
                key = "beta"  # shard_of("beta", 2) == 1
                leader = kv.leader_pid(shard=1)
                follower = next(
                    p for p in range(3) if p != leader
                )
                router = client._router
                router.note_leader(1, kv.cluster[follower].client_addr)
                await client.put(key, "v")
                assert router.hint(1) == kv.cluster[leader].client_addr
            finally:
                await client.close()
                await kv.stop()

        run(scenario())

    def test_shard_failover_after_leader_death(self):
        async def scenario():
            kv = LiveKVCluster(
                3, seed=13, shards=2,
                election_timeout=(0.1, 0.2), heartbeat_interval=0.03,
            )
            await kv.start()
            client = AsyncKVClient(kv.cluster, shards=2, max_attempts=60)
            try:
                await kv.wait_for_all_leaders(20.0)
                await client.put("beta", "before")  # shard 1
                victim = kv.leader_pid(shard=1)
                await kv.kill(victim)
                await kv.wait_for_leader(
                    20.0, shard=1, exclude=(victim,)
                )
                await client.put("beta", "after")
                response = await client.get("beta")
                assert response["value"] == "after"
            finally:
                await client.close()
                await kv.stop()

        run(scenario(), timeout=90.0)

    def test_single_shard_cluster_keeps_legacy_surface(self):
        async def scenario():
            kv = LiveKVCluster(
                3, seed=2, shards=1,
                election_timeout=(0.1, 0.2), heartbeat_interval=0.03,
            )
            await kv.start()
            client = AsyncKVClient(kv.cluster)
            try:
                await kv.wait_for_leader(20.0)
                await client.put("k", "v")
                status = await client.status()
                # Top-level single-group fields stay for old tooling.
                assert {"role", "term", "commit_index", "applied"} <= set(status)
                assert status["shards"] == 1
            finally:
                await client.close()
                await kv.stop()

        run(scenario())
