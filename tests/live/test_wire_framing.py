"""Framing and transport-layer tests over real localhost sockets."""

import asyncio

import pytest

from repro.live import (
    MAX_FRAME_BYTES,
    ClusterConfig,
    FrameError,
    PeerTransport,
    read_frame,
    write_frame,
)
from repro.live.wire import (
    BINARY_CODEC,
    JSON_CODEC,
    decode_body,
    encode_peer_frame,
    parse_peer_frame,
)
from repro.algorithms.raft.messages import RequestVote


def run(coro, timeout=30.0):
    return asyncio.run(asyncio.wait_for(coro, timeout))


async def _echo_once(host="127.0.0.1"):
    """Start a one-shot echo server; returns (host, port, server)."""
    async def handler(reader, writer):
        try:
            while True:
                value = await read_frame(reader)
                await write_frame(writer, value)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()

    server = await asyncio.start_server(handler, host, 0)
    port = server.sockets[0].getsockname()[1]
    return host, port, server


class TestFraming:
    def test_round_trip_over_socket(self):
        async def scenario():
            host, port, server = await _echo_once()
            reader, writer = await asyncio.open_connection(host, port)
            payloads = [
                {"type": "hello", "pid": 3},
                RequestVote(2, 1, 0, 0),
                {"nested": [(1, 2), {"k": b"\x00"}], "text": "héllo ✓"},
            ]
            for payload in payloads:
                await write_frame(writer, payload)
                assert await read_frame(reader) == payload
            writer.close()
            server.close()
            await server.wait_closed()

        run(scenario())

    def test_many_frames_one_stream(self):
        async def scenario():
            host, port, server = await _echo_once()
            reader, writer = await asyncio.open_connection(host, port)
            for i in range(200):
                await write_frame(writer, {"i": i, "pad": "x" * (i % 64)})
            for i in range(200):
                frame = await read_frame(reader)
                assert frame["i"] == i
            writer.close()
            server.close()
            await server.wait_closed()

        run(scenario())

    def test_eof_raises_incomplete_read(self):
        async def scenario():
            host, port, server = await _echo_once()
            reader, writer = await asyncio.open_connection(host, port)
            writer.close()
            with pytest.raises(asyncio.IncompleteReadError):
                await read_frame(reader)
            server.close()
            await server.wait_closed()

        run(scenario())

    def test_oversized_header_rejected(self):
        async def scenario():
            async def handler(reader, writer):
                writer.write((MAX_FRAME_BYTES + 1).to_bytes(4, "big"))
                await writer.drain()

            server = await asyncio.start_server(handler, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            reader, _writer = await asyncio.open_connection("127.0.0.1", port)
            with pytest.raises(FrameError):
                await read_frame(reader)
            server.close()
            await server.wait_closed()

        run(scenario())


class TestClusterConfig:
    def test_from_spec_parses_ports(self):
        cluster = ClusterConfig.from_spec("10.0.0.1:7000,10.0.0.2:7000:9000")
        assert cluster.n == 2
        assert cluster[0].peer_addr == ("10.0.0.1", 7000)
        assert cluster[0].client_port == 8000  # default offset
        assert cluster[1].client_addr == ("10.0.0.2", 9000)

    def test_localhost_ports_are_distinct(self):
        cluster = ClusterConfig.localhost(5)
        ports = [spec.port for spec in cluster.nodes]
        ports += [spec.client_port for spec in cluster.nodes]
        assert len(set(ports)) == len(ports)

    def test_bad_spec_rejected(self):
        with pytest.raises(ValueError):
            ClusterConfig.from_spec("no-port")


class TestShardedPeerFrames:
    """Shard-tagged frames: round trips, legacy compatibility, demux."""

    @staticmethod
    def _round_trip(codec, shard):
        frame = encode_peer_frame(
            "msg", codec, payload=RequestVote(2, 1, 0, 0), ts=1.5, shard=shard
        )
        return parse_peer_frame(decode_body(frame[4:]))

    def test_round_trip_both_codecs_all_shards(self):
        for codec in (BINARY_CODEC, JSON_CODEC):
            for shard in (0, 1, 2, 7, 255):
                kind, payload, ts, got = self._round_trip(codec, shard)
                assert kind == "msg"
                assert payload == RequestVote(2, 1, 0, 0)
                assert ts == 1.5
                assert got == shard

    def test_shard_zero_is_byte_identical_to_legacy(self):
        # A 1-shard cluster must emit exactly the pre-sharding bytes.
        for codec in (BINARY_CODEC, JSON_CODEC):
            tagged = encode_peer_frame(
                "msg", codec, payload={"x": 1}, ts=2.0, shard=0
            )
            legacy = encode_peer_frame("msg", codec, payload={"x": 1}, ts=2.0)
            assert tagged == legacy
        body = decode_body(
            encode_peer_frame("msg", BINARY_CODEC, payload=None, ts=0.0)[4:]
        )
        assert len(body) == 3  # no shard slot at all on the legacy shape

    def test_untagged_frames_parse_as_shard_zero(self):
        assert parse_peer_frame(("m", 1.0, "p")) == ("msg", "p", 1.0, 0)
        assert parse_peer_frame(
            {"type": "msg", "payload": "p", "ts": 1.0}
        ) == ("msg", "p", 1.0, 0)

    def test_malformed_shard_tags_rejected_not_misrouted(self):
        bad_shards = (-1, "3", 1.5, None, True, [2])
        for bad in bad_shards:
            assert parse_peer_frame(("m", 1.0, "p", bad))[0] is None
            assert parse_peer_frame(
                {"type": "msg", "payload": "p", "ts": 1.0, "shard": bad}
            )[0] is None

    def test_unknown_frame_shapes_skipped(self):
        for frame in ((), ("m",), ("m", 1.0), ("m", 1.0, "p", 2, 3),
                      ("z", 1), {"type": "future"}, "junk", 7, None):
            assert parse_peer_frame(frame) == (None, None, None, 0)


class TestShardDemux:
    """One socket pair carries every shard; handlers pick their traffic."""

    def test_transport_routes_by_shard(self):
        async def scenario():
            cluster = ClusterConfig.localhost(2)
            by_shard = {0: [], 1: []}
            got_all = asyncio.Event()

            def make_handler(shard):
                def handler(src, payload, ts):
                    by_shard[shard].append(payload["n"])
                    if sum(len(v) for v in by_shard.values()) >= 4:
                        got_all.set()
                return handler

            a = PeerTransport(cluster, 0, lambda *args: None,
                              heartbeat_interval=0.1, connect_timeout=0.5)
            b = PeerTransport(cluster, 1, make_handler(0),
                              heartbeat_interval=0.1, connect_timeout=0.5)
            b.add_handler(1, make_handler(1))
            await b.start()
            await a.start()
            a.send(1, {"n": 1})
            a.send(1, {"n": 2}, shard=1)
            a.send(1, {"n": 3}, shard=1)
            a.send(1, {"n": 4})
            await asyncio.wait_for(got_all.wait(), 10.0)
            assert by_shard == {0: [1, 4], 1: [2, 3]}
            await a.stop()
            await b.stop()

        run(scenario())

    def test_link_delay_defers_but_preserves_order(self):
        async def scenario():
            import time

            cluster = ClusterConfig.localhost(2)
            inbox = []
            got_all = asyncio.Event()

            def on_message(src, payload, ts):
                inbox.append((payload["n"], time.monotonic()))
                if len(inbox) >= 3:
                    got_all.set()

            a = PeerTransport(cluster, 0, lambda *args: None,
                              heartbeat_interval=0.1, connect_timeout=0.5)
            b = PeerTransport(cluster, 1, on_message,
                              heartbeat_interval=0.1, connect_timeout=0.5,
                              link_delay=0.05)
            await b.start()
            await a.start()
            start = time.monotonic()
            for n in (1, 2, 3):
                a.send(1, {"n": n})
            await asyncio.wait_for(got_all.wait(), 10.0)
            assert [n for n, _t in inbox] == [1, 2, 3]
            # Every delivery waited out the emulated one-way latency.
            assert all(t - start >= 0.05 for _n, t in inbox)
            await a.stop()
            await b.stop()

        run(scenario())

    def test_negative_link_delay_rejected(self):
        cluster = ClusterConfig.localhost(2)
        with pytest.raises(ValueError):
            PeerTransport(cluster, 0, lambda *args: None, link_delay=-0.1)

    def test_unrouted_shard_counted_and_dropped(self):
        async def scenario():
            cluster = ClusterConfig.localhost(2)
            inbox = []
            got_marker = asyncio.Event()

            def on_message(src, payload, ts):
                inbox.append(payload["n"])
                got_marker.set()

            a = PeerTransport(cluster, 0, lambda *args: None,
                              heartbeat_interval=0.1, connect_timeout=0.5)
            b = PeerTransport(cluster, 1, on_message,
                              heartbeat_interval=0.1, connect_timeout=0.5)
            await b.start()
            await a.start()
            # Shard 5 has no handler on b: the frame is dropped (counted),
            # like message loss — never delivered to the wrong group.
            a.send(1, {"n": 1}, shard=5)
            a.send(1, {"n": 2})  # marker on shard 0 orders the assertion
            await asyncio.wait_for(got_marker.wait(), 10.0)
            assert inbox == [2]
            assert b.stats.unrouted == 1
            await a.stop()
            await b.stop()

        run(scenario())


class TestTransport:
    def test_delivers_and_reconnects(self):
        async def scenario():
            cluster = ClusterConfig.localhost(2)
            inbox = []
            got_two = asyncio.Event()

            def on_message(src, payload, ts):
                inbox.append((src, payload))
                if len(inbox) >= 2:
                    got_two.set()

            a = PeerTransport(cluster, 0, lambda *args: None,
                              heartbeat_interval=0.1, connect_timeout=0.5)
            b = PeerTransport(cluster, 1, on_message,
                              heartbeat_interval=0.1, connect_timeout=0.5)
            await b.start()
            await a.start()
            a.send(1, {"n": 1})
            # Queued before/while the link comes up: still delivered.
            a.send(1, {"n": 2})
            await asyncio.wait_for(got_two.wait(), 10.0)
            assert [payload["n"] for _src, payload in inbox] == [1, 2]
            assert all(src == 0 for src, _payload in inbox)

            # Kill the receiving side's sockets; sender must reconnect
            # and deliver a fresh message.
            await b.stop()
            b2 = PeerTransport(cluster, 1, on_message,
                               heartbeat_interval=0.1, connect_timeout=0.5)
            await b2.start()
            got_three = asyncio.Event()

            def on_more(src, payload, ts):
                inbox.append((src, payload))
                got_three.set()

            b2.on_message = on_more
            # A frame written to the dying socket may be lost (the lossy
            # link the algorithms tolerate): retransmit until received,
            # exactly as the timer-driven protocols do.
            for _ in range(100):
                a.send(1, {"n": 3})
                try:
                    await asyncio.wait_for(got_three.wait(), 0.25)
                    break
                except asyncio.TimeoutError:
                    continue
            await asyncio.wait_for(got_three.wait(), 1.0)
            assert inbox[-1][1]["n"] == 3
            assert a.stats.sent >= 3
            await a.stop()
            await b2.stop()

        run(scenario(), timeout=40.0)

    def test_queue_overflow_drops_oldest(self):
        async def scenario():
            cluster = ClusterConfig.localhost(2)
            # Peer 1 never starts: everything queues on the dead link.
            a = PeerTransport(cluster, 0, lambda *args: None,
                              max_queue=5, connect_timeout=0.2)
            await a.start()
            for i in range(9):
                a.send(1, {"n": i})
            assert a.stats.dropped == 4
            await a.stop()

        run(scenario())

    def test_send_to_unknown_peer_rejected(self):
        async def scenario():
            cluster = ClusterConfig.localhost(2)
            a = PeerTransport(cluster, 0, lambda *args: None)
            await a.start()
            try:
                with pytest.raises(ValueError):
                    a.send(7, {"n": 1})
            finally:
                await a.stop()

        run(scenario())
