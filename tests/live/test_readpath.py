"""Unit tests for the engine-independent read path (repro.algorithms.readpath).

The live conformance suite proves the tiers end-to-end; this file pins
the arithmetic they rest on — drift-clock rebasing, the lease/drift
inequality, follower stickiness, probe-round accounting and the
fresh-leader epoch guard — with no cluster in sight.
"""

import math

import pytest

from repro.algorithms.readpath import (
    DriftClock,
    ReadConfig,
    ReadLedger,
    required_drift_bound,
)


class TestDriftClock:
    def test_perfect_clock_tracks_real_time(self):
        clock = DriftClock()
        assert clock.now(10.0) == pytest.approx(10.0)
        assert clock.now(17.5) == pytest.approx(17.5)

    def test_slow_clock_under_measures_real_time(self):
        clock = DriftClock(4.0)
        clock.now(100.0)  # anchor
        # 8 real seconds pass; the slow clock sees a quarter of them.
        assert clock.now(108.0) - clock.now(100.0) == pytest.approx(2.0)

    def test_set_factor_rebases_continuously(self):
        clock = DriftClock()
        before = clock.now(50.0)
        clock.set_factor(4.0, 50.0)
        # No jump at the switch point, only a rate change afterwards.
        assert clock.now(50.0) == pytest.approx(before)
        assert clock.now(54.0) - before == pytest.approx(1.0)

    def test_rejects_fast_clocks(self):
        with pytest.raises(ValueError):
            DriftClock(0.5)
        clock = DriftClock()
        with pytest.raises(ValueError):
            clock.set_factor(0.9, 0.0)


class TestRequiredDriftBound:
    def test_matches_the_inequality(self):
        # The chaos campaign's numbers: W=0.3, clocks up to 4x slow.
        assert required_drift_bound(0.3, 4.0) == pytest.approx(0.225)

    def test_perfect_clocks_need_no_bound(self):
        assert required_drift_bound(0.3, 1.0) == 0.0

    def test_rejects_bad_factor(self):
        with pytest.raises(ValueError):
            required_drift_bound(0.3, 0.5)


class TestStickiness:
    def test_disabled_by_default(self):
        ledger = ReadLedger()
        assert not ledger.enabled
        ledger.note_leader_contact(1.0)
        assert not ledger.sticky(1.0)

    def test_sticky_within_window_then_lapses(self):
        ledger = ReadLedger(ReadConfig(lease_duration=0.3))
        ledger.note_leader_contact(10.0)
        assert ledger.sticky(10.0)
        assert ledger.sticky(10.29)
        assert not ledger.sticky(10.31)

    def test_slow_clock_stretches_stickiness(self):
        # A follower whose clock runs slow refuses *longer* in real time,
        # which is the safe direction (its refusal covers the leader's
        # over-extended lease).
        ledger = ReadLedger(ReadConfig(lease_duration=0.3))
        ledger.clock = DriftClock(4.0)
        ledger.note_leader_contact(10.0)
        assert ledger.sticky(11.0)  # 1s real = 0.25s local < 0.3
        assert not ledger.sticky(11.3)


class TestProbeRounds:
    def test_single_node_round_completes_immediately(self):
        ledger = ReadLedger()
        rnd = ledger.begin_round(("p", 1), 3, 7, 1.0, majority=1, self_pid=0)
        assert rnd is not None and rnd.read_index == 7

    def test_majority_acks_retire_the_round(self):
        ledger = ReadLedger()
        assert (
            ledger.begin_round(("p", 1), 3, 7, 1.0, majority=2, self_pid=0)
            is None
        )
        # Duplicate acks from one voter count once.
        assert ledger.record_ack(("p", 1), 0, 3) is None
        rnd = ledger.record_ack(("p", 1), 2, 3)
        assert rnd is not None and rnd.acked == {0, 2}
        # Retired: a late ack is ignored.
        assert ledger.record_ack(("p", 1), 1, 3) is None

    def test_stale_epoch_acks_are_ignored(self):
        ledger = ReadLedger()
        ledger.begin_round(("p", 1), 3, 7, 1.0, majority=2, self_pid=0)
        assert ledger.record_ack(("p", 1), 2, epoch=2) is None
        assert ledger.record_ack(("p", 1), 2, epoch=3) is not None

    def test_new_epoch_prunes_old_rounds(self):
        ledger = ReadLedger()
        ledger.begin_round(("p", 1), 3, 7, 1.0, majority=2, self_pid=0)
        ledger.begin_round(("p", 2), 4, 9, 2.0, majority=2, self_pid=0)
        assert ledger.record_ack(("p", 1), 2, 3) is None  # pruned
        assert ledger.record_ack(("p", 2), 2, 4) is not None


class TestLease:
    def _extend(self, ledger, real):
        rnd = ledger.begin_round(
            ("p", real), 1, 1, real, majority=1, self_pid=0
        )
        ledger.extend_lease(rnd)

    def test_lease_runs_from_round_start(self):
        ledger = ReadLedger(ReadConfig(lease_duration=0.3, drift_bound=0.05))
        self._extend(ledger, 10.0)
        assert ledger.lease_remaining(10.0) == pytest.approx(0.25)
        assert ledger.lease_valid(10.2)
        assert not ledger.lease_valid(10.26)

    def test_drift_bound_saves_a_slow_clocked_leader(self):
        # The campaign scenario: W=0.3, leader clock 4x slow.  A correct
        # bound (0.25 >= 0.225 required) stops serving before the real
        # 0.3s window closes; the canary's bound of 0 keeps serving for
        # 4 * 0.3 = 1.2 real seconds — long after a rival can commit.
        safe = ReadLedger(ReadConfig(lease_duration=0.3, drift_bound=0.25))
        safe.clock = DriftClock(4.0)
        self._extend(safe, 10.0)
        assert not safe.lease_valid(10.0 + 0.3)

        unsafe = ReadLedger(ReadConfig(lease_duration=0.3, drift_bound=0.0))
        unsafe.clock = DriftClock(4.0)
        self._extend(unsafe, 10.0)
        assert unsafe.lease_valid(10.0 + 1.1)  # still serving: the bug
        assert not unsafe.lease_valid(10.0 + 1.3)

    def test_rounds_only_extend_forward(self):
        ledger = ReadLedger(ReadConfig(lease_duration=0.3))
        self._extend(ledger, 10.0)
        remaining = ledger.lease_remaining(10.0)
        # A round that started *earlier* cannot shorten the lease.
        rnd = ledger.begin_round(("q", 1), 1, 1, 9.0, majority=1, self_pid=0)
        ledger.extend_lease(rnd)
        assert ledger.lease_remaining(10.0) == pytest.approx(remaining)


class TestFreshness:
    def test_staleness_is_infinite_until_proven(self):
        ledger = ReadLedger()
        assert math.isinf(ledger.staleness(5.0))
        ledger.note_fresh(5.0)
        assert ledger.staleness(5.2) == pytest.approx(0.2)

    def test_reset_forgets_state_but_keeps_the_clock(self):
        ledger = ReadLedger(ReadConfig(lease_duration=0.3))
        ledger.clock.set_factor(4.0, 0.0)
        ledger.note_leader_contact(1.0)
        ledger.note_fresh(1.0)
        self_rnd = ledger.begin_round(("p", 1), 1, 1, 1.0, 1, 0)
        ledger.extend_lease(self_rnd)
        ledger.reset()
        assert not ledger.sticky(1.0)
        assert not ledger.lease_valid(1.0)
        assert math.isinf(ledger.staleness(1.0))
        # Restarting a process does not repair its oscillator.
        assert ledger.clock.factor == 4.0


class FakeLog:
    def __init__(self, terms):
        self._terms = terms

    def term_at(self, index):
        return self._terms[index]


class TestEpochReady:
    def test_requires_a_commit_in_the_current_epoch(self):
        log = FakeLog({1: 2, 2: 3})
        assert not ReadLedger.epoch_ready(log, 0, 3)  # nothing committed
        assert not ReadLedger.epoch_ready(log, 1, 3)  # predecessor's entry
        assert ReadLedger.epoch_ready(log, 2, 3)

    def test_malformed_logs_fail_closed(self):
        assert not ReadLedger.epoch_ready(object(), 5, 3)
        assert not ReadLedger.epoch_ready(FakeLog({}), 5, 3)
