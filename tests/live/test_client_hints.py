"""Client leader-hint maintenance across failures and restarts.

Regression territory: a restarted node loses every leadership it held,
so a connection reset must invalidate *all* shard hints naming that
address — not only the shard whose request happened to hit the reset.
Before the fix, other shards kept retrying the rebooted follower until
their own requests also failed, one avoidable stall per shard.
"""

import asyncio

import pytest

from repro.live import AsyncKVClient, ClusterConfig, LiveKVCluster, ShardRouter

FAST = dict(election_timeout=(0.15, 0.3), heartbeat_interval=0.05)


def run(coro, timeout=120.0):
    return asyncio.run(asyncio.wait_for(coro, timeout))


class TestShardRouterInvalidation:
    def _router(self, n=3, shards=4):
        return ShardRouter(ClusterConfig.localhost(n), shards)

    def test_invalidate_addr_clears_every_matching_hint(self):
        router = self._router()
        addr = router.cluster[1].client_addr
        other = router.cluster[2].client_addr
        router.note_leader(0, addr)
        router.note_leader(1, addr)
        router.note_leader(2, other)
        router.invalidate_addr(addr)
        assert router.hint(0) is None
        assert router.hint(1) is None
        assert router.hint(2) == other  # untouched: different node

    def test_invalidate_unknown_addr_is_noop(self):
        router = self._router()
        addr = router.cluster[0].client_addr
        router.note_leader(0, addr)
        router.invalidate_addr(("198.51.100.9", 1))
        assert router.hint(0) == addr

    def test_invalidated_shard_falls_back_to_preferred(self):
        router = self._router()
        addr = router.cluster[2].client_addr
        router.note_leader(0, addr)
        router.invalidate_addr(addr)
        preferred = router.cluster[0].client_addr
        assert router.target(0) == preferred

    def test_client_failure_invalidates_sibling_shard_hints(self):
        """The client-level wiring: one reset clears the other shards'
        hints to the same node (the regression this file pins)."""
        cluster = ClusterConfig.localhost(3)
        client = AsyncKVClient(cluster, shards=4)
        router = client._router
        dead = cluster[1].client_addr
        for shard in range(4):
            router.note_leader(shard, dead)
        client._note_failure(0, dead)
        assert all(router.hint(shard) != dead for shard in range(4))


@pytest.mark.live
class TestRestartHintRecovery:
    def test_restarted_leader_does_not_trap_other_shards(self):
        """Kill+restart a node leading multiple shards: the first failed
        request must steer every shard off the rebooted node, so
        subsequent writes to *other* shards do not stall retrying it."""

        async def scenario():
            cluster = LiveKVCluster(3, seed=31, shards=2, **FAST)
            await cluster.start()
            client = AsyncKVClient(
                cluster.cluster, shards=2, request_timeout=1.0
            )
            try:
                leaders = await cluster.wait_for_all_leaders(20.0)
                # Find keys for both shards and write through them so the
                # client learns real leader hints for every shard.
                keys = {}
                i = 0
                while len(keys) < 2:
                    key = f"key-{i}"
                    keys.setdefault(client._router.shard_of(key), key)
                    i += 1
                for key in keys.values():
                    await client.put(key, "before")

                victim = leaders[0]
                await cluster.kill(victim)
                await cluster.restart(victim)
                await cluster.wait_for_all_leaders(20.0)

                # Every shard must make progress promptly after restart.
                for shard, key in keys.items():
                    index = await client.put(key, "after")
                    assert index >= 1
                dead_addr = cluster.cluster[victim].client_addr
                # And no shard hint may still name a non-leader restartee
                # (it may legitimately name it again if it re-won).
                for shard in keys:
                    hint = client._router.hint(shard)
                    if hint == dead_addr:
                        assert cluster.leader_pid(shard) == victim
            finally:
                await client.close()
                await cluster.stop()

        run(scenario())
