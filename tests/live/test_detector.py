"""Unit suite for the Ω/◇S heartbeat failure detector.

Two layers, both deterministic and tier-1:

* pure-state tests drive :class:`~repro.live.detector.OmegaDetector`
  directly with hand-picked clocks — thresholds, refutation doubling,
  rank rotation;
* cluster tests run :class:`~repro.live.detector.DetectorProcess` under
  the deterministic simulator, where partitions, drops, crashes and
  timeout skew come from the seeded network model, and pin the ◇S/Ω
  stories: convergence, eventual accuracy, and *bounded* suspicion
  oscillation after a heal.
"""

import pytest

from repro.live.detector import (
    DetectorProcess,
    FdEvent,
    OmegaDetector,
    omega_converged,
)
from repro.sim.async_runtime import AsyncRuntime
from repro.sim.failures import CrashPlan
from repro.sim.network import (
    NetworkConfig,
    Partition,
    SkewedDelay,
    UniformDelay,
)

INTERVAL = 0.5


def make_detector(n=3, pid=0, **kwargs):
    fd = OmegaDetector(n, pid, interval=INTERVAL, **kwargs)
    fd.start(0.0)
    return fd


class TestDetectorState:
    def test_validation(self):
        with pytest.raises(ValueError):
            OmegaDetector(0, 0)
        with pytest.raises(ValueError):
            OmegaDetector(3, 0, interval=0.0)
        with pytest.raises(ValueError):
            OmegaDetector(3, 0, factor=0.5)

    def test_starts_trusting_everyone(self):
        fd = make_detector(n=5, pid=2)
        assert fd.suspects() == ()
        assert fd.trusted() == (0, 1, 2, 3, 4)
        assert fd.leader() == 0

    def test_before_start_inputs_are_inert(self):
        fd = OmegaDetector(3, 0, interval=INTERVAL)
        assert fd.note_heartbeat(1, 1.0) == []
        assert fd.check(100.0) == []

    def test_heartbeat_seq_increases(self):
        fd = make_detector()
        beats = [fd.heartbeat() for _ in range(3)]
        assert [b.seq for b in beats] == [1, 2, 3]
        assert all(b.sender == 0 for b in beats)

    def test_silence_beyond_threshold_suspects(self):
        fd = make_detector()
        threshold = fd.timeout_for(1)
        assert fd.check(threshold) == []  # boundary: not yet
        events = fd.check(threshold + 0.01)
        assert {(e.kind, e.peer) for e in events} == {
            ("suspect", 1),
            ("suspect", 2),
        }
        assert fd.suspects() == (1, 2)
        assert fd.check(threshold + 0.02) == []  # no repeat transitions

    def test_refutation_restores_trust_and_doubles_margin(self):
        fd = make_detector()
        margin_before = fd.timeout_for(1) - fd.factor * INTERVAL
        fd.check(fd.timeout_for(1) + 0.01)
        assert fd.is_suspected(1)
        events = fd.note_heartbeat(1, 3.0)
        assert events == [FdEvent(3.0, "trust", 1)]
        assert not fd.is_suspected(1)
        margin_after = fd.timeout_for(1) - fd.factor * fd._ewma[1]
        assert margin_after == pytest.approx(2.0 * margin_before)

    def test_margin_doubling_caps_at_max(self):
        fd = make_detector(max_margin=8.0 * INTERVAL)
        now = 0.0
        for _ in range(10):
            now += fd.timeout_for(1) + 0.01
            fd.check(now)
            fd.note_heartbeat(1, now)
        margin = fd._margin[1]
        assert margin == pytest.approx(8.0 * INTERVAL)

    def test_false_suspicions_are_logarithmically_bounded(self):
        # A live-but-slow peer delivering every `gap` seconds can only be
        # falsely suspected until the doubled margin exceeds the gap —
        # O(log(gap / margin)) transitions, never an unbounded oscillation.
        fd = make_detector()
        gap = 16.0 * INTERVAL
        now, false_suspicions = 0.0, 0
        for _ in range(64):
            now += gap
            if fd.check(now):
                false_suspicions += 1
            fd.note_heartbeat(1, now)
        assert 0 < false_suspicions <= 5  # log2(16/1) + slack, not 64
        assert not fd.is_suspected(1)

    def test_ewma_adapts_to_slow_links(self):
        # Per-link skew tolerance: regular-but-slow arrivals raise the
        # estimate until the threshold clears the real inter-arrival gap.
        fd = make_detector(margin=0.1)
        gap = 3.0 * INTERVAL
        now = 0.0
        for _ in range(40):
            now += gap
            fd.check(now)
            fd.note_heartbeat(1, now)
        assert fd._ewma[1] == pytest.approx(gap, rel=0.05)
        assert fd.timeout_for(1) > gap
        assert not fd.check(now + gap)  # steady slow cadence: no suspicion

    def test_self_and_unknown_sources_ignored(self):
        fd = make_detector(n=3, pid=1)
        assert fd.note_heartbeat(1, 1.0) == []
        assert fd.note_heartbeat(99, 1.0) == []

    def test_leader_skips_suspected_and_rotates_rank(self):
        fd = make_detector(n=5, pid=4, preferred=2)
        assert fd.leader() == 2
        fd.check(fd.timeout_for(2) + 100.0)  # everyone silent: suspect all
        assert fd.leader() == 4  # self is always trusted
        fd.note_heartbeat(3, 200.0)
        assert fd.leader() == 3  # (3 - 2) % 5 beats (4 - 2) % 5

    def test_transitions_since_filters_by_time(self):
        fd = make_detector()
        fd.check(fd.timeout_for(1) + 0.01)
        fd.note_heartbeat(1, 50.0)
        assert {e.kind for e in fd.transitions_since(0.0)} == {
            "suspect",
            "trust",
        }
        assert [e.kind for e in fd.transitions_since(50.0)] == ["trust"]


def run_cluster(
    n=5,
    *,
    seed=0,
    max_time=60.0,
    network=None,
    crash_plans=(),
    preferred=0,
):
    processes = [DetectorProcess(interval=INTERVAL, preferred=preferred) for _ in range(n)]
    runtime = AsyncRuntime(
        [p for p in processes],
        network=network or NetworkConfig(delay_model=UniformDelay(0.01, 0.05)),
        seed=seed,
        crash_plans=list(crash_plans),
        max_time=max_time,
    )
    result = runtime.run()
    omegas = {}
    for pid, time, leader in result.trace.annotations("omega"):
        omegas.setdefault(pid, []).append((time, leader))
    leaders = {pid: [l for _t, l in choices] for pid, choices in omegas.items()}
    return result, processes, leaders, omegas


class TestOmegaCluster:
    @pytest.mark.parametrize("seed", range(4))
    def test_failure_free_convergence(self, seed):
        _result, processes, leaders, _ = run_cluster(seed=seed, max_time=30.0)
        assert omega_converged(leaders, live=range(5)) == 0
        # Eventual strong accuracy held trivially: nobody was ever suspected.
        assert all(p.detector.suspects() == () for p in processes)

    @pytest.mark.parametrize("preferred", [0, 2, 4])
    def test_preferred_rank_steers_omega(self, preferred):
        _r, _p, leaders, _ = run_cluster(seed=1, max_time=30.0, preferred=preferred)
        assert omega_converged(leaders, live=range(5)) == preferred

    @pytest.mark.parametrize("seed", range(3))
    def test_crash_moves_omega_to_next_rank(self, seed):
        _r, processes, leaders, _ = run_cluster(
            seed=seed,
            max_time=60.0,
            crash_plans=[CrashPlan(pid=0, at_time=20.0)],
        )
        assert omega_converged(leaders, live=[1, 2, 3, 4]) == 1
        assert all(
            processes[pid].detector.is_suspected(0) for pid in (1, 2, 3, 4)
        )

    @pytest.mark.parametrize("seed", range(3))
    def test_partition_and_heal_reconverge(self, seed):
        # Isolate pid 0 for (20, 50): the majority side must converge to
        # rank 1 during the cut and back to 0 after the heal.
        network = NetworkConfig(
            delay_model=UniformDelay(0.01, 0.05),
            partitions=[Partition(20.0, 50.0, [[0], [1, 2, 3, 4]])],
        )
        _r, processes, leaders, omegas = run_cluster(
            seed=seed, network=network, max_time=110.0
        )
        for pid in (1, 2, 3, 4):
            during = [l for t, l in omegas[pid] if 30.0 < t < 50.0]
            assert during and set(during) == {1}
        assert omega_converged(leaders, live=range(5)) == 0
        assert all(p.detector.suspects() == () for p in processes)

    @pytest.mark.parametrize("seed", range(3))
    def test_oscillation_after_heal_is_bounded(self, seed):
        network = NetworkConfig(
            delay_model=UniformDelay(0.01, 0.05),
            partitions=[Partition(20.0, 50.0, [[0], [1, 2, 3, 4]])],
        )
        _r, processes, _l, _o = run_cluster(
            seed=seed, network=network, max_time=200.0
        )
        for pid in (1, 2, 3, 4):
            fd = processes[pid].detector
            # After the heal (plus one threshold of slack), pid 0's link
            # must not keep flapping: refutation doubling bounds the
            # post-heal transitions to a handful, not one per tick.
            post_heal = [
                e
                for e in fd.transitions_since(50.0 + fd.timeout_for(0))
                if e.peer == 0
            ]
            assert len(post_heal) <= 4, post_heal
            assert not fd.is_suspected(0)

    @pytest.mark.parametrize("seed", range(3))
    def test_converges_despite_message_drops(self, seed):
        network = NetworkConfig(
            delay_model=UniformDelay(0.01, 0.05), drop_rate=0.25
        )
        _r, processes, leaders, _ = run_cluster(
            seed=seed, network=network, max_time=120.0
        )
        assert omega_converged(leaders, live=range(5)) == 0
        # Lossy links may suspect transiently, but doubling margins make
        # every live link quiescent well before the horizon.
        for process in processes:
            assert process.detector.suspects() == ()

    @pytest.mark.parametrize("seed", range(3))
    def test_timeout_skew_only_raises_the_slow_links(self, seed):
        # Node 4's links run 6x slow (nemesis timeout-skew analogue).
        # Peers must adapt that one link without unbounded flapping, and
        # fast links between the others must stay clean.
        network = NetworkConfig(
            delay_model=SkewedDelay(UniformDelay(0.01, 0.05), slow_pids=[4], factor=6.0)
        )
        _r, processes, leaders, _ = run_cluster(
            seed=seed, network=network, max_time=120.0
        )
        assert omega_converged(leaders, live=range(5)) == 0
        for pid in range(4):
            fd = processes[pid].detector
            for fast_peer in range(4):
                if fast_peer != pid:
                    assert fd.suspect_counts[fast_peer] == 0
            assert fd.suspect_counts[4] <= 6
            assert not fd.is_suspected(4)

    def test_seeded_determinism(self):
        outcomes = []
        for _ in range(2):
            result, _p, _l, omegas = run_cluster(seed=7, max_time=40.0)
            outcomes.append(
                (
                    len(result.trace),
                    {pid: tuple(choices) for pid, choices in omegas.items()},
                )
            )
        assert outcomes[0] == outcomes[1]

    def test_different_seeds_differ(self):
        first = run_cluster(seed=1, max_time=20.0)[0]
        second = run_cluster(seed=2, max_time=20.0)[0]
        times = lambda r: [e.time for e in r.trace.events][:200]
        assert times(first) != times(second)
