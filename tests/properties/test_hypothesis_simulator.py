"""Property-based tests of the simulators themselves (Experiment E10).

Two classes of properties: *determinism* (a run is a pure function of the
seed) and *event ordering* (the queue is a faithful priority queue; the
mailbox preserves delivery order).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.async_runtime import AsyncRuntime
from repro.sim.events import EventQueue
from repro.sim.network import NetworkConfig, UniformDelay
from repro.sim.ops import Broadcast, Decide, Receive
from repro.sim.process import FunctionProcess
from repro.sim.sync_runtime import SyncRuntime
from repro.sim.ops import Exchange


@given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=200))
@settings(max_examples=100, deadline=None)
def test_event_queue_is_a_stable_priority_queue(times):
    queue = EventQueue()
    for i, time in enumerate(times):
        queue.push(time, i)
    popped = [queue.pop() for _ in range(len(times))]
    popped_times = [t for t, _e in popped]
    assert popped_times == sorted(times)
    # Stability: equal times pop in insertion order.
    from collections import defaultdict

    groups = defaultdict(list)
    for time, event in popped:
        groups[time].append(event)
    for time, events in groups.items():
        assert events == sorted(events)


def gossip(api):
    yield Broadcast(("gossip", api.pid, api.rng.random()))
    envelopes = yield Receive(count=api.n)
    yield Decide(tuple(sorted(e.payload[2] for e in envelopes)))


@given(
    st.integers(min_value=2, max_value=8),
    st.integers(min_value=0, max_value=2**32),
)
@settings(max_examples=50, deadline=None)
def test_async_runtime_is_seed_deterministic(n, seed):
    def execute():
        runtime = AsyncRuntime(
            [FunctionProcess(gossip) for _ in range(n)],
            seed=seed,
            network=NetworkConfig(delay_model=UniformDelay(0.1, 2.0)),
        )
        result = runtime.run()
        return (
            result.decisions,
            result.final_time,
            len(result.trace),
            result.events_processed,
        )

    assert execute() == execute()


def sync_gossip(api):
    inbox = yield Exchange(api.rng.randrange(100))
    yield Decide(tuple(sorted(inbox.items())))


@given(
    st.integers(min_value=1, max_value=8),
    st.integers(min_value=0, max_value=2**32),
)
@settings(max_examples=50, deadline=None)
def test_sync_runtime_is_seed_deterministic(n, seed):
    def execute():
        runtime = SyncRuntime(
            [FunctionProcess(sync_gossip) for _ in range(n)], seed=seed
        )
        result = runtime.run()
        return result.decisions, result.exchanges, len(result.trace)

    assert execute() == execute()


@given(
    st.integers(min_value=2, max_value=6),
    st.integers(min_value=0, max_value=2**32),
    st.integers(min_value=0, max_value=2**32),
)
@settings(max_examples=30, deadline=None)
def test_different_seeds_vary_randomness(n, seed_a, seed_b):
    # Not a strict property (collisions possible) — we only require that the
    # *per-process RNG streams* differ between different seeds, which holds
    # unless the seeds collide.
    if seed_a == seed_b:
        return

    def sample(seed):
        runtime = AsyncRuntime(
            [FunctionProcess(gossip) for _ in range(n)], seed=seed
        )
        return runtime.run().decisions

    # Equal decisions are possible but the full float tuples colliding for
    # all processes is (astronomically) unlikely; treat equality as failure
    # only if every coin matches.
    assert sample(seed_a) != sample(seed_b)
