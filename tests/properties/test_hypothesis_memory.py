"""Property-based tests for the shared-memory substrate objects.

The adopt-commit coherence proof (see ``repro.memory.adopt_commit``) rests
on ordering cycles; these tests hammer the object with hypothesis-chosen
schedules — including fully adversarial explicit step sequences — and check
that no interleaving whatsoever produces an incoherent round.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.confidence import COMMIT, VACILLATE
from repro.core.properties import check_ac_round, check_agreement, check_vac_round
from repro.memory import run_shared_memory_consensus
from repro.memory.adopt_commit import RegisterAdoptCommit
from repro.memory.composition import RegisterVacFromTwoAcs
from repro.memory.scheduler import MemoryScheduler, SharedMemoryProcess
from repro.sim.ops import Annotate


class OneShot(SharedMemoryProcess):
    def __init__(self, obj):
        self.obj = obj

    def run(self, api):
        outcome = yield from self.obj.invoke(api, api.init_value)
        yield Annotate("outcome", outcome)


def scripted_policy(script):
    """Turn a list of pids into a scheduling policy (cycling, skipping done)."""

    def policy(step, runnable, rng):
        choice = script[step % len(script)]
        return choice if choice in runnable else runnable[step % len(runnable)]

    return policy


@st.composite
def memory_system(draw):
    n = draw(st.integers(min_value=2, max_value=6))
    inits = draw(st.lists(st.integers(0, 2), min_size=n, max_size=n))
    script = draw(st.lists(st.integers(0, n - 1), min_size=4, max_size=60))
    return n, inits, script


@given(memory_system())
@settings(max_examples=100, deadline=None)
def test_register_ac_coherent_under_any_schedule(system):
    n, inits, script = system
    ac = RegisterAdoptCommit(n)
    scheduler = MemoryScheduler(
        [OneShot(ac) for _ in range(n)],
        init_values=inits,
        policy=scripted_policy(script),
        seed=0,
    )
    result = scheduler.run()
    outcomes = {pid: v for pid, _t, v in result.trace.annotations("outcome")}
    assert len(outcomes) == n
    check_ac_round(outcomes)
    assert all(v in inits for _c, v in outcomes.values())
    if len(set(inits)) == 1:
        assert all(c is COMMIT for c, _v in outcomes.values())


@given(memory_system())
@settings(max_examples=100, deadline=None)
def test_register_vac_composition_coherent_under_any_schedule(system):
    n, inits, script = system
    vac = RegisterVacFromTwoAcs(n)
    scheduler = MemoryScheduler(
        [OneShot(vac) for _ in range(n)],
        init_values=inits,
        policy=scripted_policy(script),
        seed=0,
    )
    result = scheduler.run()
    outcomes = {pid: v for pid, _t, v in result.trace.annotations("outcome")}
    assert len(outcomes) == n
    check_vac_round(outcomes)
    assert all(v in inits for _c, v in outcomes.values())
    if len(set(inits)) == 1:
        assert all(c is COMMIT for c, _v in outcomes.values())


@given(
    st.integers(min_value=2, max_value=5),
    st.integers(min_value=0, max_value=2**32),
)
@settings(max_examples=50, deadline=None)
def test_shared_memory_consensus_always_agrees(n, seed):
    inits = [(seed >> i) & 1 for i in range(n)]
    result = run_shared_memory_consensus(inits, seed=seed)
    assert len(result.decisions) == n
    check_agreement(result.decisions)
    assert all(v in inits for v in result.decisions.values())
