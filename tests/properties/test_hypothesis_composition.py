"""Property-based tests for the Section 5 compositions over real objects.

``VacFromTwoAdoptCommits`` is exercised with two Phase-King adopt-commit
objects in the synchronous model (with and without Byzantine processes);
``AdoptCommitFromVac`` with Ben-Or's VAC in the asynchronous model.  In
every execution the composed object must satisfy the *stronger* interface's
properties.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.ben_or.vac import BenOrVac
from repro.algorithms.phase_king.adopt_commit import PhaseKingAdoptCommit
from repro.core.composition import AdoptCommitFromVac, VacFromTwoAdoptCommits
from repro.core.confidence import COMMIT
from repro.core.properties import check_ac_round, check_vac_round
from repro.sim.async_runtime import AsyncRuntime
from repro.sim.failures import ByzantineProcess, equivocating_strategy, silent_strategy
from repro.sim.sync_runtime import SyncRuntime

from tests.helpers import OneShotDetector, collect_outcomes


@st.composite
def sync_system(draw):
    t = draw(st.integers(min_value=1, max_value=2))
    n = draw(st.integers(min_value=3 * t + 1, max_value=3 * t + 3))
    inits = draw(st.lists(st.integers(0, 1), min_size=n, max_size=n))
    byz_count = draw(st.integers(min_value=0, max_value=t))
    byz_pids = draw(
        st.lists(st.integers(0, n - 1), min_size=byz_count, max_size=byz_count, unique=True)
    )
    seed = draw(st.integers(min_value=0, max_value=2**32))
    return n, t, inits, byz_pids, seed


@given(sync_system(), st.booleans())
@settings(max_examples=50, deadline=None)
def test_vac_from_two_phase_king_acs_is_a_correct_vac(system, use_silent):
    n, t, inits, byz_pids, seed = system
    strategy_factory = (lambda: silent_strategy) if use_silent else equivocating_strategy
    vac = VacFromTwoAdoptCommits(PhaseKingAdoptCommit(), PhaseKingAdoptCommit())
    processes = []
    for pid in range(n):
        if pid in byz_pids:
            processes.append(ByzantineProcess(strategy_factory()))
        else:
            processes.append(OneShotDetector(vac))
    correct = [pid for pid in range(n) if pid not in byz_pids]
    runtime = SyncRuntime(
        processes,
        init_values=inits,
        t=t,
        seed=seed,
        stop_pids=correct,
        stop_when="all_done",
        max_exchanges=6,
    )
    result = runtime.run()
    outcomes = collect_outcomes(result.trace, correct)
    assert len(outcomes) == len(correct)
    check_vac_round(outcomes)
    # Convergence (only claimable without Byzantine interference on values):
    if not byz_pids and len(set(inits)) == 1:
        assert all(c is COMMIT for c, _v in outcomes.values())


@st.composite
def async_system(draw):
    n = draw(st.integers(min_value=3, max_value=7))
    t = draw(st.integers(min_value=1, max_value=(n - 1) // 2))
    inits = draw(st.lists(st.integers(0, 1), min_size=n, max_size=n))
    seed = draw(st.integers(min_value=0, max_value=2**32))
    return n, t, inits, seed


@given(async_system())
@settings(max_examples=50, deadline=None)
def test_ac_from_ben_or_vac_is_a_correct_ac(system):
    n, t, inits, seed = system
    ac = AdoptCommitFromVac(BenOrVac())
    processes = [OneShotDetector(ac) for _ in range(n)]
    runtime = AsyncRuntime(
        processes, init_values=inits, t=t, seed=seed,
        stop_when="all_halted", max_time=1_000.0,
    )
    result = runtime.run()
    outcomes = collect_outcomes(result.trace)
    assert len(outcomes) == n
    check_ac_round(outcomes)
    if len(set(inits)) == 1:
        assert all(c is COMMIT for c, _v in outcomes.values())
