"""Property-based tests: Phase-King under randomized Byzantine adversaries."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.phase_king import run_phase_king
from repro.algorithms.phase_king.adopt_commit import PhaseKingAdoptCommit
from repro.core.properties import (
    check_ac_round,
    check_agreement,
    check_termination,
    check_validity,
)
from repro.sim.failures import (
    ByzantineProcess,
    anti_phase_king_strategy,
    equivocating_strategy,
    random_noise_strategy,
    silent_strategy,
)
from repro.sim.sync_runtime import SyncRuntime

from tests.helpers import OneShotDetector, collect_outcomes

STRATEGY_FACTORIES = [
    lambda: silent_strategy,
    random_noise_strategy,
    equivocating_strategy,
    anti_phase_king_strategy,
]


@st.composite
def phase_king_system(draw):
    t = draw(st.integers(min_value=1, max_value=3))
    n = draw(st.integers(min_value=3 * t + 1, max_value=3 * t + 4))
    inits = draw(st.lists(st.integers(0, 1), min_size=n, max_size=n))
    byz_count = draw(st.integers(min_value=0, max_value=t))
    byz_pids = draw(
        st.lists(
            st.integers(0, n - 1), min_size=byz_count, max_size=byz_count,
            unique=True,
        )
    )
    strategies = [
        draw(st.sampled_from(range(len(STRATEGY_FACTORIES)))) for _ in byz_pids
    ]
    seed = draw(st.integers(min_value=0, max_value=2**32))
    return n, t, inits, dict(zip(byz_pids, strategies)), seed


@given(phase_king_system())
@settings(max_examples=40, deadline=None)
def test_fixed_mode_agreement_validity_termination(system):
    n, t, inits, byz_spec, seed = system
    byzantine = {
        pid: STRATEGY_FACTORIES[index]() for pid, index in byz_spec.items()
    }
    result = run_phase_king(inits, t=t, byzantine=byzantine, mode="fixed", seed=seed)
    correct = [pid for pid in range(n) if pid not in byzantine]
    decisions = {pid: result.decisions[pid] for pid in correct if pid in result.decisions}
    check_termination(decisions, correct)
    check_agreement(decisions)
    # Validity in the binary-with-sentinel domain: decisions stay in {0, 1}.
    assert all(v in (0, 1) for v in decisions.values())
    # Strict validity where the paper claims it: unanimous correct inputs.
    correct_inputs = {inits[pid] for pid in correct}
    if len(correct_inputs) == 1:
        check_validity(decisions, correct_inputs)


@given(phase_king_system())
@settings(max_examples=40, deadline=None)
def test_single_ac_invocation_coherent(system):
    n, t, inits, byz_spec, seed = system
    byzantine = {
        pid: STRATEGY_FACTORIES[index]() for pid, index in byz_spec.items()
    }
    processes = []
    for pid in range(n):
        if pid in byzantine:
            processes.append(ByzantineProcess(byzantine[pid]))
        else:
            processes.append(OneShotDetector(PhaseKingAdoptCommit()))
    correct = [pid for pid in range(n) if pid not in byzantine]
    runtime = SyncRuntime(
        processes,
        init_values=inits,
        t=t,
        seed=seed,
        stop_pids=correct,
        stop_when="all_done",
        max_exchanges=4,
    )
    result = runtime.run()
    outcomes = collect_outcomes(result.trace, correct)
    assert len(outcomes) == len(correct)
    check_ac_round(outcomes)
