"""Property-based tests: Ben-Or invariants over random systems and schedules."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.ben_or import ben_or_template_consensus
from repro.algorithms.ben_or.vac import BenOrVac
from repro.core.properties import (
    check_agreement,
    check_all_rounds,
    check_no_decision_without_commit,
    check_termination,
    check_validity,
    check_vac_round,
)
from repro.sim.async_runtime import AsyncRuntime
from repro.sim.failures import CrashPlan

from tests.helpers import OneShotDetector, collect_outcomes


@st.composite
def ben_or_system(draw):
    n = draw(st.integers(min_value=3, max_value=8))
    t = draw(st.integers(min_value=1, max_value=(n - 1) // 2))
    inits = draw(st.lists(st.integers(0, 1), min_size=n, max_size=n))
    seed = draw(st.integers(min_value=0, max_value=2**32))
    return n, t, inits, seed


@given(ben_or_system())
@settings(max_examples=40, deadline=None)
def test_consensus_invariants_hold(system):
    n, t, inits, seed = system
    processes = [ben_or_template_consensus() for _ in range(n)]
    runtime = AsyncRuntime(
        processes, init_values=inits, t=t, seed=seed, max_time=10_000.0
    )
    result = runtime.run()
    assert result.stop_reason == "stop_condition", "must terminate by deciding"
    check_agreement(result.decisions)
    check_validity(result.decisions, inits)
    check_termination(result.decisions, range(n))
    check_all_rounds(result.trace, "vac")
    check_no_decision_without_commit(result.trace, "vac")


@given(ben_or_system(), st.data())
@settings(max_examples=30, deadline=None)
def test_consensus_invariants_hold_with_crashes(system, data):
    n, t, inits, seed = system
    crash_count = data.draw(st.integers(min_value=0, max_value=t))
    victims = data.draw(
        st.lists(
            st.integers(0, n - 1), min_size=crash_count, max_size=crash_count,
            unique=True,
        )
    )
    plans = []
    for victim in victims:
        if data.draw(st.booleans()):
            plans.append(CrashPlan(victim, at_time=data.draw(st.floats(0.1, 20.0))))
        else:
            plans.append(CrashPlan(victim, after_sends=data.draw(st.integers(1, 30))))
    processes = [ben_or_template_consensus() for _ in range(n)]
    runtime = AsyncRuntime(
        processes, init_values=inits, t=t, seed=seed, crash_plans=plans,
        max_time=10_000.0,
    )
    result = runtime.run()
    live = [pid for pid in range(n) if pid not in victims]
    check_agreement(result.decisions)
    check_validity(result.decisions, inits)
    check_termination(result.decisions, live)
    check_all_rounds(result.trace, "vac", correct=live)


@given(ben_or_system())
@settings(max_examples=40, deadline=None)
def test_single_vac_invocation_coherent(system):
    n, t, inits, seed = system
    processes = [OneShotDetector(BenOrVac()) for _ in range(n)]
    runtime = AsyncRuntime(
        processes, init_values=inits, t=t, seed=seed,
        stop_when="all_halted", max_time=1_000.0,
    )
    result = runtime.run()
    outcomes = collect_outcomes(result.trace)
    assert len(outcomes) == n
    check_vac_round(outcomes)
    # Object validity: every outcome value is some process's input.
    assert all(v in inits for _c, v in outcomes.values())
