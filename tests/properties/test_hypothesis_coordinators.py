"""Property-based tests for the coordinator-based asynchronous algorithms.

Raft and Chandra-Toueg are fuzzed over system sizes, inputs, crash
schedules (within the minority budget) and timing parameters; both must
satisfy full consensus and their per-term / per-round coherence.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.chandra_toueg import run_chandra_toueg
from repro.algorithms.raft import run_raft_consensus
from repro.algorithms.raft.vac import check_raft_vac
from repro.core.properties import (
    check_agreement,
    check_termination,
    check_validity,
)
from repro.sim.failures import CrashPlan


@st.composite
def crash_schedule(draw, n):
    crash_count = draw(st.integers(min_value=0, max_value=(n - 1) // 2))
    victims = draw(
        st.lists(
            st.integers(0, n - 1), min_size=crash_count, max_size=crash_count,
            unique=True,
        )
    )
    plans = []
    for victim in victims:
        when = draw(st.floats(min_value=0.5, max_value=40.0))
        plans.append(CrashPlan(victim, at_time=when))
    return plans


@st.composite
def raft_system(draw):
    n = draw(st.integers(min_value=1, max_value=7))
    inits = draw(st.lists(st.integers(0, 9), min_size=n, max_size=n))
    seed = draw(st.integers(min_value=0, max_value=2**32))
    plans = draw(crash_schedule(n))
    return n, inits, seed, plans


@given(raft_system())
@settings(max_examples=25, deadline=None)
def test_raft_invariants(system):
    n, inits, seed, plans = system
    result = run_raft_consensus(inits, seed=seed, crash_plans=plans, max_time=5_000.0)
    victims = {plan.pid for plan in plans}
    live = [pid for pid in range(n) if pid not in victims]
    check_agreement(result.decisions)
    check_validity(result.decisions, inits)
    check_termination(result.decisions, live)
    check_raft_vac(result.trace)


@given(raft_system())
@settings(max_examples=25, deadline=None)
def test_chandra_toueg_invariants(system):
    n, inits, seed, plans = system
    result = run_chandra_toueg(inits, seed=seed, crash_plans=plans, max_time=10_000.0)
    victims = {plan.pid for plan in plans}
    live = [pid for pid in range(n) if pid not in victims]
    check_agreement(result.decisions)
    check_validity(result.decisions, inits)
    check_termination(result.decisions, live)
    check_raft_vac(result.trace)
