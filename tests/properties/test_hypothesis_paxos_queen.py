"""Property-based tests for the beyond-the-paper algorithms.

Paxos is fuzzed over system sizes, inputs, crash schedules and retry-timer
ranges; Phase-Queen over Byzantine placements and strategies.  Both must
satisfy full consensus plus their per-round/per-ballot coherence.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.paxos import run_paxos
from repro.algorithms.phase_queen import run_phase_queen
from repro.algorithms.raft.vac import check_raft_vac
from repro.core.properties import (
    check_agreement,
    check_termination,
    check_validity,
)
from repro.sim.failures import (
    CrashPlan,
    anti_phase_king_strategy,
    equivocating_strategy,
    random_noise_strategy,
    silent_strategy,
)

STRATEGY_FACTORIES = [
    lambda: silent_strategy,
    random_noise_strategy,
    equivocating_strategy,
    anti_phase_king_strategy,
]


@st.composite
def paxos_system(draw):
    n = draw(st.integers(min_value=2, max_value=7))
    inits = draw(st.lists(st.integers(0, 3), min_size=n, max_size=n))
    seed = draw(st.integers(min_value=0, max_value=2**32))
    crash_count = draw(st.integers(min_value=0, max_value=(n - 1) // 2))
    victims = draw(
        st.lists(
            st.integers(0, n - 1), min_size=crash_count, max_size=crash_count,
            unique=True,
        )
    )
    crash_times = [
        draw(st.floats(min_value=0.5, max_value=30.0)) for _ in victims
    ]
    return n, inits, seed, list(zip(victims, crash_times))


@given(paxos_system())
@settings(max_examples=30, deadline=None)
def test_paxos_invariants(system):
    n, inits, seed, crashes = system
    plans = [CrashPlan(pid, at_time=when) for pid, when in crashes]
    result = run_paxos(inits, seed=seed, crash_plans=plans, max_time=10_000.0)
    live = [pid for pid in range(n) if pid not in {pid for pid, _ in crashes}]
    check_agreement(result.decisions)
    check_validity(result.decisions, inits)
    check_termination(result.decisions, live)
    check_raft_vac(result.trace, correct=range(n))


@st.composite
def phase_queen_system(draw):
    t = draw(st.integers(min_value=1, max_value=2))
    n = draw(st.integers(min_value=4 * t + 1, max_value=4 * t + 4))
    inits = draw(st.lists(st.integers(0, 1), min_size=n, max_size=n))
    byz_count = draw(st.integers(min_value=0, max_value=t))
    byz_pids = draw(
        st.lists(
            st.integers(0, n - 1), min_size=byz_count, max_size=byz_count,
            unique=True,
        )
    )
    strategies = [
        draw(st.sampled_from(range(len(STRATEGY_FACTORIES)))) for _ in byz_pids
    ]
    seed = draw(st.integers(min_value=0, max_value=2**32))
    return n, t, inits, dict(zip(byz_pids, strategies)), seed


@given(phase_queen_system())
@settings(max_examples=40, deadline=None)
def test_phase_queen_invariants(system):
    n, t, inits, byz_spec, seed = system
    byzantine = {
        pid: STRATEGY_FACTORIES[index]() for pid, index in byz_spec.items()
    }
    result = run_phase_queen(
        inits, t=t, byzantine=byzantine, mode="fixed", seed=seed
    )
    correct = [pid for pid in range(n) if pid not in byzantine]
    decisions = {
        pid: result.decisions[pid] for pid in correct if pid in result.decisions
    }
    check_termination(decisions, correct)
    check_agreement(decisions)
    assert all(v in (0, 1) for v in decisions.values())
    correct_inputs = {inits[pid] for pid in correct}
    if len(correct_inputs) == 1:
        check_validity(decisions, correct_inputs)
