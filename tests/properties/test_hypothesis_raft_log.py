"""Property-based tests for the Raft log's append semantics.

The central invariant is Log Matching: if two logs agree on the term at some
index, they are identical up through that index.  We model a "leader history"
as a sequence of (term, commands) batches replicated — possibly partially and
out of order — into follower logs, and check the invariant plus local
structural properties after every mutation.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.raft.log import Entry, RaftLog


@st.composite
def leader_history(draw):
    """A monotone-term sequence of appended entries, as one leader log."""
    terms = draw(
        st.lists(st.integers(1, 5), min_size=1, max_size=12).map(sorted)
    )
    return [Entry(term, f"cmd-{i}") for i, term in enumerate(terms)]


@given(leader_history(), st.data())
@settings(max_examples=100, deadline=None)
def test_log_matching_under_partial_replication(entries, data):
    leader = RaftLog(entries)
    follower = RaftLog()

    # Replay random AppendEntries slices in random order; accepted ones must
    # keep the follower consistent with the leader.
    attempts = data.draw(st.integers(1, 10))
    for _ in range(attempts):
        prev = data.draw(st.integers(0, leader.last_index))
        end = data.draw(st.integers(prev, leader.last_index))
        ok = follower.try_append(
            prev, leader.term_at(prev), leader.entries_from(prev + 1)[: end - prev]
        )
        if ok:
            # Every follower entry must equal the leader's at that index.
            for index in range(1, follower.last_index + 1):
                assert follower.entry_at(index) == leader.entry_at(index)

    # Log Matching: same (index, term) implies identical prefixes.
    shared = min(leader.last_index, follower.last_index)
    for index in range(shared, 0, -1):
        if leader.term_at(index) == follower.term_at(index):
            for j in range(1, index + 1):
                assert leader.entry_at(j) == follower.entry_at(j)
            break


@given(leader_history(), leader_history())
@settings(max_examples=100, deadline=None)
def test_conflict_resolution_erases_divergent_suffix(old_entries, new_entries):
    """Replicating a second leader's log from scratch must leave the follower
    exactly equal to the new leader's log, whatever it held before."""
    follower = RaftLog(old_entries)
    new_leader = RaftLog(new_entries)
    # Full replication from index 0 — what repeated NextIndex backoff
    # converges to in the worst case.
    # To model conflict deletion we bump conflicting terms: append the whole
    # new log after prev=0.
    assert follower.try_append(0, 0, new_leader.as_list())
    # The follower's prefix now equals the new leader's log; a stale suffix
    # may survive only if it agreed (same term) at every overlapping index.
    for index in range(1, new_leader.last_index + 1):
        assert follower.entry_at(index) == new_leader.entry_at(index)


@given(leader_history())
@settings(max_examples=100, deadline=None)
def test_terms_remain_monotone(entries):
    log = RaftLog(entries)
    terms = [log.term_at(i) for i in range(1, log.last_index + 1)]
    assert terms == sorted(terms)


@given(leader_history(), st.integers(0, 6), st.integers(0, 14))
@settings(max_examples=100, deadline=None)
def test_up_to_date_is_a_total_preorder_with_self(entries, other_term, other_index):
    log = RaftLog(entries)
    # Reflexivity: a log is always as up to date as itself.
    assert log.other_is_up_to_date(log.last_term, log.last_index)
    # Antisymmetry on the comparison key.
    forward = log.other_is_up_to_date(other_term, other_index)
    key_other = (other_term, other_index)
    key_self = (log.last_term, log.last_index)
    assert forward == (key_other >= key_self)
