"""Cross-cutting adversarial stress tests: hostile network conditions
layered onto whole protocols.

Modeling note on partitions: :class:`repro.sim.network.Partition` *drops*
cross-partition messages — the right model for Raft/Paxos/Chandra-Toueg,
which retransmit.  Ben-Or sends every message exactly once and assumes
**reliable links**, so a dropping partition can strand the minority forever
(its round-m quorum needs majority-side round-m messages that were lost) —
``test_dropping_partition_strands_the_minority`` documents that this is
real, and the liveness tests use a *delaying* partition built on the
interceptor hook, which preserves reliability.
"""

import pytest

from repro.algorithms.ben_or import ben_or_template_consensus
from repro.algorithms.chandra_toueg import run_chandra_toueg
from repro.algorithms.paxos import run_paxos
from repro.algorithms.paxos.messages import Accept
from repro.algorithms.raft import run_raft_consensus
from repro.core.properties import check_agreement, check_all_rounds, check_termination
from repro.sim.async_runtime import AsyncRuntime
from repro.sim.network import DEFER, NetworkConfig, Partition, UniformDelay


def delaying_partition(start, end, group_a, group_b):
    """An interceptor holding cross-group messages until the cut heals."""
    group_a, group_b = set(group_a), set(group_b)

    def interceptor(payload, src, dst, now):
        if start <= now < end and (
            (src in group_a and dst in group_b)
            or (src in group_b and dst in group_a)
        ):
            return (end - now) + 1.0  # deliver shortly after healing
        return DEFER

    return interceptor


class TestBenOrUnderPartitions:
    @pytest.mark.parametrize("seed", range(4))
    def test_delaying_partition_preserves_everything(self, seed):
        network = NetworkConfig(
            delay_model=UniformDelay(0.5, 1.5),
            interceptor=delaying_partition(2.0, 30.0, [0, 1], [2, 3, 4]),
        )
        runtime = AsyncRuntime(
            [ben_or_template_consensus() for _ in range(5)],
            init_values=[0, 1, 0, 1, 1],
            t=2,
            seed=seed,
            network=network,
            max_time=50_000.0,
        )
        result = runtime.run()
        check_agreement(result.decisions)
        check_termination(result.decisions, range(5))
        check_all_rounds(result.trace, "vac")

    def test_dropping_partition_strands_the_minority(self):
        """With *lossy* partitions Ben-Or's minority can never finish its
        cut-era rounds: its quorum needs round-m messages that were dropped.
        Safety holds; termination holds only for the majority side."""
        network = NetworkConfig(
            delay_model=UniformDelay(0.5, 1.5),
            partitions=[Partition(2.0, 30.0, [[0, 1], [2, 3, 4]])],
        )
        runtime = AsyncRuntime(
            [ben_or_template_consensus() for _ in range(5)],
            init_values=[0, 1, 0, 1, 1],
            t=2,
            seed=1,
            network=network,
            max_time=300.0,  # bounded: the minority will never decide
            stop_when="all_alive_decided",
        )
        result = runtime.run()
        check_agreement(result.decisions)
        majority_decided = [pid for pid in (2, 3, 4) if pid in result.decisions]
        assert len(majority_decided) == 3
        assert 0 not in result.decisions and 1 not in result.decisions


class TestRaftHostileNetworks:
    @pytest.mark.parametrize("seed", range(3))
    def test_fifo_plus_drops(self, seed):
        network = NetworkConfig(
            delay_model=UniformDelay(0.5, 1.5), fifo=True, drop_rate=0.1
        )
        result = run_raft_consensus([1, 2, 3], seed=seed, network=network)
        check_agreement(result.decisions)
        check_termination(result.decisions, range(3))

    def test_repeated_leader_isolation(self):
        # Cut a different node out in consecutive windows: leadership churns
        # but safety and (after the last window) liveness hold — Raft
        # retransmits, so dropping partitions are the faithful model here.
        network = NetworkConfig(
            delay_model=UniformDelay(0.5, 1.5),
            partitions=[
                Partition(5.0, 35.0, [[0], [1, 2, 3, 4]]),
                Partition(40.0, 70.0, [[1], [0, 2, 3, 4]]),
                Partition(75.0, 105.0, [[2], [0, 1, 3, 4]]),
            ],
        )
        result = run_raft_consensus([1, 2, 3, 4, 5], seed=2, network=network)
        check_agreement(result.decisions)
        check_termination(result.decisions, range(5))


class TestPaxosTargetedAttacks:
    @pytest.mark.parametrize("seed", range(3))
    def test_dropping_all_accepts_of_low_ballots(self, seed):
        """An interceptor that destroys every Accept of the first three
        ballot counters: early ballots can never choose, later ones must."""

        def drop_early_accepts(payload, src, dst, now):
            if isinstance(payload, Accept) and payload.ballot[0] <= 3:
                return None
            return DEFER

        network = NetworkConfig(
            delay_model=UniformDelay(0.5, 1.5), interceptor=drop_early_accepts
        )
        result = run_paxos(
            [1, 2, 3, 4, 5], seed=seed, network=network, max_time=10_000.0
        )
        check_agreement(result.decisions)
        check_termination(result.decisions, range(5))
        # The decision must come from a ballot above the attacked range.
        from repro.core.confidence import COMMIT

        commit_ballots = [
            ballot
            for _p, _t, (ballot, conf, _v) in result.trace.annotations("vac")
            if conf is COMMIT
        ]
        assert min(commit_ballots)[0] > 3


class TestChandraTouegHostileTiming:
    @pytest.mark.parametrize("seed", range(3))
    def test_partition_around_early_coordinators(self, seed):
        # CT retransmits nothing either, so use the delaying partition.
        network = NetworkConfig(
            delay_model=UniformDelay(0.5, 1.5),
            interceptor=delaying_partition(1.0, 25.0, [0, 1], [2, 3, 4]),
        )
        result = run_chandra_toueg(
            [1, 2, 3, 4, 5], seed=seed, network=network, max_time=20_000.0
        )
        check_agreement(result.decisions)
        check_termination(result.decisions, range(5))
