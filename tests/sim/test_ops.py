"""Unit tests for the operation dataclasses."""

import dataclasses

import pytest

from repro.sim.ops import (
    Annotate,
    Broadcast,
    CancelTimer,
    Decide,
    Exchange,
    ExchangeTo,
    Halt,
    Op,
    Receive,
    Send,
    SetTimer,
    TimerFired,
)


ALL_OPS = [
    Send(1, "x"),
    Broadcast("x"),
    Receive(),
    SetTimer(1.0),
    CancelTimer(),
    Exchange("x"),
    ExchangeTo({0: "x"}),
    Decide("x"),
    Annotate("k", "v"),
    Halt(),
]


def test_every_op_is_an_op():
    assert all(isinstance(op, Op) for op in ALL_OPS)


def test_ops_are_frozen():
    for op in ALL_OPS:
        fields = dataclasses.fields(op)
        if not fields:
            continue
        with pytest.raises(dataclasses.FrozenInstanceError):
            setattr(op, fields[0].name, "mutated")


def test_broadcast_defaults_to_include_self():
    assert Broadcast("x").include_self is True
    assert Broadcast("x", include_self=False).include_self is False


def test_receive_defaults():
    receive = Receive()
    assert receive.count == 1
    assert receive.predicate is None
    assert receive.consume is True


def test_set_timer_default_name():
    assert SetTimer(2.0).name == "timer"
    assert CancelTimer().name == "timer"


def test_exchange_default_payload_is_silent():
    assert Exchange().payload is None


def test_exchange_to_defaults_to_empty():
    assert ExchangeTo().payloads == {}


def test_timer_fired_is_a_payload_not_an_op():
    assert not isinstance(TimerFired("t"), Op)
    assert TimerFired("t").name == "t"
