"""Crash/restart injection tests for the asynchronous runtime."""

import pytest

from repro.sim import trace as tr
from repro.sim.async_runtime import AsyncRuntime
from repro.sim.failures import CrashPlan
from repro.sim.network import ConstantDelay, NetworkConfig
from repro.sim.ops import Broadcast, Decide, Receive, Send, SetTimer, TimerFired
from repro.sim.process import FunctionProcess, Process


def run(protocols, **kwargs):
    processes = [
        p if isinstance(p, Process) else FunctionProcess(p) for p in protocols
    ]
    kwargs.setdefault("seed", 1)
    kwargs.setdefault("network", NetworkConfig(delay_model=ConstantDelay(1.0)))
    return AsyncRuntime(processes, **kwargs).run()


class TestCrashPlanValidation:
    def test_requires_exactly_one_trigger(self):
        with pytest.raises(ValueError):
            CrashPlan(0)
        with pytest.raises(ValueError):
            CrashPlan(0, at_time=1.0, after_sends=2)

    def test_restart_must_follow_crash(self):
        with pytest.raises(ValueError):
            CrashPlan(0, at_time=5.0, restart_at=4.0)

    def test_negative_after_sends_rejected(self):
        with pytest.raises(ValueError):
            CrashPlan(0, after_sends=-1)

    def test_zero_after_sends_rejected(self):
        # after_sends is 1-based: the smallest meaningful plan crashes the
        # victim right after its first send.
        with pytest.raises(ValueError):
            CrashPlan(0, after_sends=0)

    def test_negative_at_time_rejected(self):
        with pytest.raises(ValueError):
            CrashPlan(0, at_time=-1.0)

    def test_restart_must_be_positive_with_after_sends(self):
        with pytest.raises(ValueError):
            CrashPlan(0, after_sends=2, restart_at=0.0)
        with pytest.raises(ValueError):
            CrashPlan(0, after_sends=2, restart_at=-3.0)

    def test_restart_with_after_sends_accepts_positive_times(self):
        plan = CrashPlan(0, after_sends=2, restart_at=10.0)
        assert plan.restart_at == 10.0

    def test_unknown_pid_rejected(self):
        def proto(api):
            yield Decide(1)

        with pytest.raises(ValueError):
            run([proto], crash_plans=[CrashPlan(9, at_time=1.0)])


class TestTimedCrash:
    def test_crashed_process_stops_sending(self):
        def chatty(api):
            while True:
                yield SetTimer(1.0, "tick")
                yield Receive(count=1, predicate=lambda e: isinstance(e.payload, TimerFired))
                yield Send(1, "tick")

        def passive(api):
            while True:
                yield Receive(count=1)

        result = run(
            [chatty, passive],
            crash_plans=[CrashPlan(0, at_time=5.5)],
            max_time=50.0,
            stop_when="all_halted",
        )
        sends = [e for e in result.trace.of_kind(tr.SEND) if e.pid == 0]
        assert len(sends) == 5  # ticks at 1..5 only
        assert result.trace.crashed_pids() == [0]

    def test_messages_to_crashed_process_are_dropped(self):
        def sender(api):
            yield Receive(count=1, predicate=lambda e: isinstance(e.payload, TimerFired))
            yield Send(1, "late")
            yield Decide("sent")

        def sender_init(api):
            yield SetTimer(10.0, "go")
            yield from sender(api)

        def victim(api):
            while True:
                yield Receive(count=1)

        result = run(
            [sender_init, victim],
            crash_plans=[CrashPlan(1, at_time=5.0)],
            stop_when="queue_empty",
        )
        drops = [e for e in result.trace.of_kind(tr.DROP) if e.pid == 1]
        assert len(drops) == 1


class TestSendCountCrash:
    def test_crash_mid_broadcast_delivers_prefix_only(self):
        def broadcaster(api):
            yield Broadcast("v", include_self=False)
            yield Decide("done")

        def listener(api):
            yield Receive(count=1)
            yield Decide("got")

        # n = 5; broadcaster sends to 1,2,3,4 but crashes after 2 sends.
        result = run(
            [broadcaster, listener, listener, listener, listener],
            crash_plans=[CrashPlan(0, after_sends=2)],
            stop_when="queue_empty",
        )
        delivered = {e.pid for e in result.trace.of_kind(tr.DELIVER)}
        assert delivered == {1, 2}
        assert result.trace.crashed_pids() == [0]
        assert 0 not in result.decisions

    def test_crash_after_first_send_prevents_later_steps(self):
        def proto(api):
            yield Send(1, "x")
            yield Decide("never")

        def sink(api):
            while True:
                yield Receive(count=1)

        result = run(
            [proto, sink],
            crash_plans=[CrashPlan(0, after_sends=1)],
            stop_when="queue_empty",
        )
        assert 0 not in result.decisions


class TestRestart:
    def test_restart_reruns_the_process(self):
        class Counter(Process):
            def __init__(self):
                self.incarnations = 0

            def run(self, api):
                self.incarnations += 1
                yield Decide(self.incarnations) if self.incarnations >= 2 else SetTimer(100.0, "idle")
                while True:
                    yield Receive(count=1)

        counter = Counter()
        result = run(
            [counter],
            crash_plans=[CrashPlan(0, at_time=5.0, restart_at=10.0)],
            max_time=30.0,
            stop_when="all_halted",
        )
        assert counter.incarnations == 2
        restarts = list(result.trace.of_kind(tr.RESTART))
        assert len(restarts) == 1
        assert result.decisions == {0: 2}

    def test_on_restart_hook_invoked(self):
        calls = []

        class Hooked(Process):
            def run(self, api):
                while True:
                    yield Receive(count=1)

            def on_restart(self, api):
                calls.append(api.pid)

        result = run(
            [Hooked()],
            crash_plans=[CrashPlan(0, at_time=2.0, restart_at=4.0)],
            max_time=10.0,
            stop_when="all_halted",
        )
        assert calls == [0]

    def test_mailbox_cleared_on_crash(self):
        def sender(api):
            yield Send(1, "before-crash")
            yield Decide("s")

        def victim(api):
            # Waits for two messages.  The first incarnation receives only
            # "before-crash" and blocks; the crash wipes the mailbox, so
            # after the restart both received messages must be post-restart.
            envs = yield Receive(count=2)
            yield Decide(tuple(sorted(e.payload for e in envs)))

        def late_sender(api):
            yield SetTimer(10.0, "go")
            yield Receive(count=1, predicate=lambda e: isinstance(e.payload, TimerFired))
            yield Send(1, "after-restart-1")
            yield Send(1, "after-restart-2")
            yield Decide("s")

        result = run(
            [sender, victim, late_sender],
            crash_plans=[CrashPlan(1, at_time=3.0, restart_at=5.0)],
            max_time=30.0,
        )
        assert result.decisions[1] == ("after-restart-1", "after-restart-2")


class TestStopConditionWithCrashes:
    def test_all_alive_decided_ignores_crashed(self):
        def proto(api):
            yield SetTimer(float(api.pid + 1) * 2, "wait")
            yield Receive(count=1, predicate=lambda e: isinstance(e.payload, TimerFired))
            yield Decide(api.pid)
            while True:
                yield Receive(count=1)

        result = run(
            [proto, proto, proto],
            crash_plans=[CrashPlan(2, at_time=1.0)],
            max_time=60.0,
        )
        assert result.stop_reason == "stop_condition"
        assert set(result.decisions) == {0, 1}
