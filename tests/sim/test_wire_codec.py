"""Round-trip tests for the lossless wire codec (`repro.sim.serialize`).

Every algorithm message dataclass that `repro.live.codec` registers must
survive ``wire_loads(wire_dumps(msg)) == msg`` — including nested entries,
tuples, unicode strings and enum members — because the live runtime ships
exactly these objects between cluster nodes.
"""

import enum
from dataclasses import dataclass

import pytest

import repro.live.codec  # noqa: F401  (registers the algorithm messages)
from repro.algorithms.ben_or.messages import Ratify, Report
from repro.algorithms.chandra_toueg.messages import (
    Ack,
    CoordinatorProposal,
    CtDecide,
    Estimate,
)
from repro.algorithms.chandra_toueg.messages import Nack as CtNack
from repro.algorithms.chandra_toueg.replicated import (
    CtChain,
    CtChainAck,
    CtPrepare,
    CtPrepareNack,
    CtPromise,
    CtSnapshot,
    CtSnapshotAck,
)
from repro.algorithms.multi_paxos import (
    PaxChain,
    PaxChainAck,
    PaxPrepare,
    PaxPrepareNack,
    PaxPromise,
    PaxSnapshot,
    PaxSnapshotAck,
)
from repro.algorithms.paxos.messages import Accept, Accepted, Nack, Prepare, Promise
from repro.algorithms.replica import Noop
from repro.algorithms.raft.log import Entry
from repro.algorithms.raft.messages import (
    AppendEntries,
    AppendEntriesReply,
    ClientPropose,
    InstallSnapshot,
    InstallSnapshotReply,
    RequestVote,
    RequestVoteReply,
)
from repro.algorithms.raft.state_machine import DecideAndStop, Put
from repro.algorithms.shared_coin.conciliator import ConcInput
from repro.core.confidence import ADOPT, COMMIT, Confidence
from repro.live.detector import FdHeartbeat
from repro.live.kv import KvBatch, TaggedPut
from repro.sim.ops import TimerFired
from repro.sim.serialize import (
    WireError,
    from_wire,
    register_wire_type,
    to_wire,
    wire_dumps,
    wire_loads,
)

SAMPLE_MESSAGES = [
    # Ben-Or exchanges, including a hashable-but-composite round tag.
    Report(3, 1),
    Report(("phase", 2), 0),
    Ratify(3, 1),
    Ratify(4, None),
    # Paxos, ballots as (counter, pid) tuples.
    Prepare((5, 2)),
    Promise((5, 2), None, None, 0),
    Promise((5, 2), (4, 1), "värde", 3),
    Accept((5, 2), {"k": [1, 2, 3]}),
    Accepted((5, 2), 40, 1),
    Nack((5, 2), (9, 4)),
    # Chandra-Toueg.
    Estimate(2, "估计值", 1, 4),
    CoordinatorProposal(2, 40),
    Ack(2, 0),
    CtNack(2, 3),
    CtDecide("décidé"),
    # Raft, with nested entries carrying commands.
    RequestVote(7, 1, 12, 6),
    RequestVoteReply(7, True, 2),
    AppendEntries(7, 1, 12, 6, (), 10),
    AppendEntries(
        7, 1, 12, 6,
        (Entry(6, DecideAndStop("vérité")), Entry(7, Put("clé", "значение"))),
        11,
    ),
    AppendEntriesReply(7, False, 2, 0),
    AppendEntriesReply(7, True, 2, 13),
    InstallSnapshot(8, 1, 20, 7, {"x": 1, "y": [True, None]}),
    InstallSnapshotReply(8, 2, 20),
    ClientPropose("req-1", Put("k", "v")),
    ClientPropose(("client", 3, 1), DecideAndStop(0)),
    Entry(3, Put("键", b"\x00\xffbytes")),
    DecideAndStop(1),
    Put("unicode-κλειδί", "🎯"),
    # Multi-Paxos engine (ballots are stride-encoded ints).
    PaxPrepare(8193, 4, 1),
    PaxPromise(8193, 2, 0, 0, None, 4, ()),
    PaxPromise(
        8193, 2, 3, 4097, ({"k": "v"}, 3), 4,
        (Entry(4097, Put("clé", "значение")),),
    ),
    PaxPrepareNack(8193, 12290, 0),
    PaxChain(8193, 1, 4, 4097, (Entry(8193, Put("a", 1)),), 3),
    PaxChain(8193, 1, 0, 0, (), 0),
    PaxChainAck(8193, True, 2, 5),
    PaxChainAck(8193, False, 2, 0),
    PaxSnapshot(8193, 1, 10, 4097, ({"x": [1, 2]}, 10)),
    PaxSnapshotAck(8193, 0, 10),
    # Chandra-Toueg engine (same mixer shapes, disjoint wire names).
    CtPrepare(12290, 1, 2),
    CtPromise(12290, 0, 0, 0, None, 1, (Entry(8193, Put("k", "v")),)),
    CtPrepareNack(12290, 16387, 1),
    CtChain(12290, 2, 1, 8193, (Entry(12290, DecideAndStop("done")),), 1),
    CtChainAck(12290, True, 0, 2),
    CtSnapshot(12290, 2, 7, 8193, ({"s": True}, 7)),
    CtSnapshotAck(12290, 1, 7),
    # Failure-detector beacon + the mixer's gap filler.
    FdHeartbeat(3, 41),
    Noop(),
    Noop("leadership"),
    Entry(8193, Noop()),
    # KV service commands.
    TaggedPut("k", "v", "op-7"),
    KvBatch((TaggedPut("a", 1, "op-1"), TaggedPut("b", 2, "op-2")), (0, 5)),
    KvBatch((), ("barrier", 2, 9)),
    # Shared coin and timers.
    ConcInput(1, 0),
    TimerFired("election"),
]


class TestMessageRoundTrips:
    @pytest.mark.parametrize(
        "message", SAMPLE_MESSAGES, ids=lambda m: type(m).__name__
    )
    def test_round_trip_is_equal_and_same_type(self, message):
        data = wire_dumps(message)
        assert isinstance(data, bytes)
        back = wire_loads(data)
        assert type(back) is type(message)
        assert back == message

    def test_nested_entries_recover_command_types(self):
        msg = AppendEntries(
            2, 0, 0, 0, (Entry(1, Put("k", (1, 2))), Entry(2, DecideAndStop(9))), 0
        )
        back = wire_loads(wire_dumps(msg))
        assert isinstance(back.entries, tuple)
        assert isinstance(back.entries[0].command, Put)
        assert back.entries[0].command.value == (1, 2)
        assert isinstance(back.entries[1].command, DecideAndStop)

    def test_confidence_enum_round_trips(self):
        for member in Confidence:
            assert wire_loads(wire_dumps(member)) is member
        payload = {"vac": (3, ADOPT, 1), "other": COMMIT}
        assert wire_loads(wire_dumps(payload)) == payload


class TestContainerEncoding:
    def test_scalars(self):
        for value in (None, True, False, 0, -17, 3.5, "plain", "日本語 🚀"):
            assert wire_loads(wire_dumps(value)) == value

    def test_tuple_list_distinction_survives(self):
        value = {"t": (1, 2), "l": [1, 2]}
        back = wire_loads(wire_dumps(value))
        assert isinstance(back["t"], tuple)
        assert isinstance(back["l"], list)

    def test_non_string_dict_keys(self):
        value = {(1, 2): "pair", 7: "int", "s": "str"}
        assert wire_loads(wire_dumps(value)) == value

    def test_bytes(self):
        value = bytes(range(256))
        assert wire_loads(wire_dumps(value)) == value

    def test_deep_nesting(self):
        value = [((("deep",),), {"k": [Put("a", (None, b"\x01"))]})]
        assert wire_loads(wire_dumps(value)) == value


class TestRegistryErrors:
    def test_unregistered_dataclass_rejected(self):
        @dataclass(frozen=True)
        class Unregistered:
            x: int

        with pytest.raises(WireError, match="not wire-registered"):
            to_wire(Unregistered(1))

    def test_unregistered_enum_rejected(self):
        class Color(enum.Enum):
            RED = 1

        with pytest.raises(WireError, match="not wire-registered"):
            to_wire(Color.RED)

    def test_reregistering_same_class_is_noop(self):
        assert register_wire_type(Report) is Report

    def test_conflicting_name_rejected(self):
        @dataclass(frozen=True)
        class Impostor:
            round_no: int
            value: int

        with pytest.raises(WireError, match="already registered"):
            register_wire_type(
                Impostor, name="repro.algorithms.ben_or.messages:Report"
            )

    def test_non_dataclass_rejected(self):
        with pytest.raises(WireError):
            register_wire_type(int)

    def test_unknown_wire_tag_rejected(self):
        with pytest.raises(WireError, match="malformed"):
            from_wire({"!": "zz", "v": 1})

    def test_unknown_type_name_rejected(self):
        with pytest.raises(WireError, match="unknown wire dataclass"):
            from_wire({"!": "c", "t": "nowhere:Nothing", "f": {}})
