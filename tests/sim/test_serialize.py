"""Tests for trace serialization (JSON Lines export)."""

import json

from repro.algorithms.ben_or import ben_or_template_consensus
from repro.sim.async_runtime import AsyncRuntime
from repro.sim.failures import CrashPlan
from repro.sim.serialize import dump_jsonl, event_to_record, load_jsonl, trace_records
from repro.sim import trace as tr
from repro.sim.trace import Trace, TraceEvent


def sample_run():
    runtime = AsyncRuntime(
        [ben_or_template_consensus() for _ in range(4)],
        init_values=[0, 1, 0, 1],
        t=1,
        seed=5,
        crash_plans=[CrashPlan(3, at_time=2.0)],
        max_time=10_000.0,
    )
    return runtime.run()


class TestEventRecords:
    def test_send_event_is_structured(self):
        result = sample_run()
        send = next(e for e in result.trace.events if e.kind == tr.SEND)
        record = event_to_record(send)
        assert {"time", "kind", "pid", "src", "dst", "seq", "payload"} <= set(record)
        json.dumps(record)  # round-trips through JSON

    def test_annotation_event_keeps_key(self):
        result = sample_run()
        annotate = next(e for e in result.trace.events if e.kind == tr.ANNOTATE)
        record = event_to_record(annotate)
        assert "key" in record and "value" in record
        json.dumps(record)

    def test_decide_event_carries_detail(self):
        record = event_to_record(TraceEvent(1.0, tr.DECIDE, 2, 42))
        assert record["detail"] == 42

    def test_crash_event_minimal(self):
        record = event_to_record(TraceEvent(3.0, tr.CRASH, 1))
        assert record == {"time": 3.0, "kind": "crash", "pid": 1}

    def test_non_json_payloads_become_repr(self):
        record = event_to_record(
            TraceEvent(0.0, tr.ANNOTATE, 0, ("k", (1, object())))
        )
        assert isinstance(record["value"][1], str)
        json.dumps(record)

    def test_every_event_of_a_real_run_serializes(self):
        result = sample_run()
        records = list(trace_records(result.trace))
        assert len(records) == len(result.trace)
        json.dumps(records)


class TestJsonlRoundtrip:
    def test_dump_and_load(self, tmp_path):
        result = sample_run()
        path = str(tmp_path / "trace.jsonl")
        written = dump_jsonl(result.trace, path)
        assert written == len(result.trace)
        records = load_jsonl(path)
        assert len(records) == written
        kinds = {record["kind"] for record in records}
        assert {"send", "deliver", "decide", "annotate", "crash"} <= kinds

    def test_empty_trace(self, tmp_path):
        path = str(tmp_path / "empty.jsonl")
        assert dump_jsonl(Trace(), path) == 0
        assert load_jsonl(path) == []

    def test_decisions_recoverable_from_dump(self, tmp_path):
        result = sample_run()
        path = str(tmp_path / "trace.jsonl")
        dump_jsonl(result.trace, path)
        decisions = {}
        for record in load_jsonl(path):
            if record["kind"] == "decide" and record["pid"] not in decisions:
                decisions[record["pid"]] = record["detail"]
        assert decisions == result.decisions
