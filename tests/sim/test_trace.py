"""Unit tests for execution traces."""

from repro.sim import trace as tr
from repro.sim.trace import Trace


def build_sample_trace() -> Trace:
    trace = Trace()
    trace.record(0.0, tr.SEND, 0, "m1")
    trace.record(1.0, tr.DELIVER, 1, "m1")
    trace.record(1.5, tr.ANNOTATE, 1, ("vac", (1, "A", 0)))
    trace.record(2.0, tr.DECIDE, 1, 42)
    trace.record(2.5, tr.DECIDE, 1, 42)  # duplicate decide ignored by queries
    trace.record(3.0, tr.CRASH, 2)
    trace.record(3.5, tr.ANNOTATE, 0, ("coin", (1, 1)))
    trace.record(4.0, tr.DECIDE, 0, 42)
    return trace


def test_decisions_keep_first_value():
    trace = build_sample_trace()
    assert trace.decisions() == {1: 42, 0: 42}


def test_decision_times_are_first_occurrence():
    trace = build_sample_trace()
    assert trace.decision_times() == {1: 2.0, 0: 4.0}


def test_annotations_filter_by_key():
    trace = build_sample_trace()
    assert trace.annotations("coin") == [(0, 3.5, (1, 1))]
    assert len(trace.annotations()) == 2


def test_message_and_delivered_counts():
    trace = build_sample_trace()
    assert trace.message_count() == 1
    assert trace.delivered_count() == 1


def test_crashed_pids():
    trace = build_sample_trace()
    assert trace.crashed_pids() == [2]


def test_of_kind_preserves_order():
    trace = build_sample_trace()
    decide_times = [e.time for e in trace.of_kind(tr.DECIDE)]
    assert decide_times == [2.0, 2.5, 4.0]


def test_len_counts_all_events():
    assert len(build_sample_trace()) == 8


def test_empty_trace_queries():
    trace = Trace()
    assert trace.decisions() == {}
    assert trace.annotations() == []
    assert trace.message_count() == 0
    assert trace.crashed_pids() == []
