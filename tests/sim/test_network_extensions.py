"""Tests for FIFO links and the content-aware interceptor hook."""

import random

import pytest

from repro.algorithms.ben_or import ben_or_template_consensus
from repro.algorithms.ben_or.messages import Ratify
from repro.core.properties import check_agreement, check_all_rounds
from repro.sim.async_runtime import AsyncRuntime
from repro.sim.network import DEFER, NetworkConfig, UniformDelay
from repro.sim.ops import Decide, Receive, Send
from repro.sim.process import FunctionProcess


class TestFifo:
    def test_fifo_preserves_per_link_order(self):
        def sender(api):
            for i in range(20):
                yield Send(1, i)
            yield Decide("sent")

        def receiver(api):
            envelopes = yield Receive(count=20)
            yield Decide([e.payload for e in envelopes])

        runtime = AsyncRuntime(
            [FunctionProcess(sender), FunctionProcess(receiver)],
            seed=3,
            network=NetworkConfig(delay_model=UniformDelay(0.1, 5.0), fifo=True),
        )
        result = runtime.run()
        assert result.decisions[1] == list(range(20))

    def test_non_fifo_reorders_with_wide_jitter(self):
        def sender(api):
            for i in range(20):
                yield Send(1, i)
            yield Decide("sent")

        def receiver(api):
            envelopes = yield Receive(count=20)
            yield Decide([e.payload for e in envelopes])

        runtime = AsyncRuntime(
            [FunctionProcess(sender), FunctionProcess(receiver)],
            seed=3,
            network=NetworkConfig(delay_model=UniformDelay(0.1, 5.0), fifo=False),
        )
        result = runtime.run()
        assert result.decisions[1] != list(range(20))

    def test_fifo_links_are_independent(self):
        # FIFO constrains each (src, dst) pair separately, not globally.
        config = NetworkConfig(delay_model=UniformDelay(1.0, 1.0), fifo=True)
        rng = random.Random(0)
        first = config.route(rng, 0, 1, now=0.0)
        assert first == pytest.approx(1.0)
        other_link = config.route(rng, 0, 2, now=0.0)
        assert other_link == pytest.approx(1.0)

    def test_ben_or_correct_over_fifo_links(self):
        network = NetworkConfig(delay_model=UniformDelay(0.5, 1.5), fifo=True)
        for seed in range(5):
            runtime = AsyncRuntime(
                [ben_or_template_consensus() for _ in range(5)],
                init_values=[0, 1, 0, 1, 1],
                t=2,
                seed=seed,
                network=network,
                max_time=50_000.0,
            )
            result = runtime.run()
            check_agreement(result.decisions)
            check_all_rounds(result.trace, "vac")


class TestInterceptor:
    def test_interceptor_can_drop_by_content(self):
        def drop_evens(payload, src, dst, now):
            if isinstance(payload, int) and payload % 2 == 0:
                return None
            return DEFER

        def sender(api):
            for i in range(6):
                yield Send(1, i)
            yield Decide("sent")

        def receiver(api):
            envelopes = yield Receive(count=3)
            yield Decide(sorted(e.payload for e in envelopes))

        runtime = AsyncRuntime(
            [FunctionProcess(sender), FunctionProcess(receiver)],
            seed=0,
            network=NetworkConfig(interceptor=drop_evens),
        )
        result = runtime.run()
        assert result.decisions[1] == [1, 3, 5]

    def test_interceptor_can_fix_latency(self):
        def slow_threes(payload, src, dst, now):
            return 30.0 if payload == 3 else DEFER

        def sender(api):
            yield Send(1, 3)
            yield Send(1, 9)
            yield Decide("sent")

        def receiver(api):
            envelopes = yield Receive(count=2)
            yield Decide([e.payload for e in envelopes])

        runtime = AsyncRuntime(
            [FunctionProcess(sender), FunctionProcess(receiver)],
            seed=0,
            network=NetworkConfig(interceptor=slow_threes),
        )
        result = runtime.run()
        assert result.decisions[1] == [9, 3]  # 3 delayed past 9

    def test_self_messages_bypass_interceptor(self):
        def drop_all(payload, src, dst, now):
            return None

        def proto(api):
            yield Send(0, "to-self")
            envelopes = yield Receive(count=1)
            yield Decide(envelopes[0].payload)

        runtime = AsyncRuntime(
            [FunctionProcess(proto)],
            seed=0,
            network=NetworkConfig(interceptor=drop_all),
        )
        assert runtime.run().decisions[0] == "to-self"

    def test_ratify_starvation_adversary_cannot_break_ben_or_safety(self):
        """A content-aware adversary that delays every ratify message toward
        process 0 by 10x: safety (agreement + coherence) must survive, even
        though process 0 runs permanently behind."""

        def starve_ratifies(payload, src, dst, now):
            if dst == 0 and isinstance(payload, Ratify):
                return 15.0
            return DEFER

        for seed in range(5):
            runtime = AsyncRuntime(
                [ben_or_template_consensus() for _ in range(5)],
                init_values=[0, 1, 0, 1, 1],
                t=2,
                seed=seed,
                network=NetworkConfig(
                    delay_model=UniformDelay(0.5, 1.5),
                    interceptor=starve_ratifies,
                ),
                max_time=100_000.0,
            )
            result = runtime.run()
            check_agreement(result.decisions)
            check_all_rounds(result.trace, "vac")
