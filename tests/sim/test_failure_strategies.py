"""Unit tests for the Byzantine strategy library."""

import random

from repro.sim.failures import (
    ByzantineProcess,
    anti_phase_king_strategy,
    equivocating_strategy,
    random_noise_strategy,
    silent_strategy,
)
from repro.sim.ops import Decide, Exchange
from repro.sim.process import FunctionProcess, ProcessAPI
from repro.sim.sync_runtime import SyncRuntime


def make_api(pid=0, n=4):
    return ProcessAPI(pid, n, 1, None, random.Random(0))


class TestStrategies:
    def test_silent_sends_nothing(self):
        assert silent_strategy(make_api(), 0, {}) == {}

    def test_random_noise_covers_all_recipients(self):
        strategy = random_noise_strategy((0, 1))
        out = strategy(make_api(n=5), 0, {})
        assert set(out) == {0, 1, 2, 3, 4}
        assert all(v in (0, 1) for v in out.values())

    def test_equivocating_splits_the_network(self):
        strategy = equivocating_strategy("a", "b")
        out = strategy(make_api(n=4), 0, {})
        assert out == {0: "a", 1: "a", 2: "b", 3: "b"}

    def test_anti_phase_king_echoes_observed_values(self):
        strategy = anti_phase_king_strategy()
        api = make_api(n=4)
        strategy(api, 0, {})  # first barrier: no observations yet
        out = strategy(api, 1, {0: 1, 1: 0, 2: 1})
        assert out[0] == 1
        assert out[1] == 0
        assert out[2] == 1

    def test_anti_phase_king_ignores_non_binary_noise(self):
        strategy = anti_phase_king_strategy()
        api = make_api(n=4)
        out = strategy(api, 0, {0: 2, 1: "junk"})
        # Non-binary observations are not echoed; equivocation fallback.
        assert out[0] in (0, 1)


class TestByzantineProcess:
    def test_participates_in_every_barrier(self):
        log = []

        def recording(api, barrier, inbox):
            log.append(barrier)
            return {pid: barrier for pid in range(api.n)}

        def observer(api):
            first = yield Exchange(None)
            second = yield Exchange(None)
            yield Decide((first.get(1), second.get(1)))

        runtime = SyncRuntime(
            [FunctionProcess(observer), ByzantineProcess(recording)],
            stop_pids=[0],
        )
        result = runtime.run()
        assert result.decisions[0] == (0, 1)
        assert log[:2] == [0, 1]

    def test_strategy_sees_previous_inbox(self):
        seen = []

        def spying(api, barrier, inbox):
            seen.append(dict(inbox))
            return {}

        def speaker(api):
            yield Exchange("round-a")
            yield Exchange("round-b")
            yield Decide("done")

        SyncRuntime(
            [FunctionProcess(speaker), ByzantineProcess(spying)],
            stop_pids=[0],
        ).run()
        assert seen[0] == {}
        assert seen[1] == {0: "round-a"}
