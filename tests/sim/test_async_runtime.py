"""Behavioural tests for the asynchronous virtual-time runtime."""

import pytest

from repro.sim import trace as tr
from repro.sim.async_runtime import AsyncRuntime, SimulationError
from repro.sim.network import ConstantDelay, NetworkConfig
from repro.sim.ops import (
    Annotate,
    Broadcast,
    CancelTimer,
    Decide,
    Halt,
    Receive,
    Send,
    SetTimer,
    TimerFired,
)
from repro.sim.process import FunctionProcess


def run(protocols, **kwargs):
    processes = [FunctionProcess(p) for p in protocols]
    kwargs.setdefault("seed", 1)
    return AsyncRuntime(processes, **kwargs).run()


def is_timer(envelope):
    return isinstance(envelope.payload, TimerFired)


class TestMessaging:
    def test_send_and_receive(self):
        def sender(api):
            yield Send(1, "ping")
            yield Decide("sent")

        def receiver(api):
            envs = yield Receive(count=1)
            yield Decide(envs[0].payload)

        result = run([sender, receiver])
        assert result.decisions == {0: "sent", 1: "ping"}

    def test_broadcast_includes_self_by_default(self):
        def proto(api):
            yield Broadcast("hi")
            envs = yield Receive(count=api.n)
            yield Decide(sorted(e.src for e in envs))

        result = run([proto, proto, proto])
        assert result.decisions[0] == [0, 1, 2]

    def test_broadcast_can_exclude_self(self):
        def proto(api):
            yield Broadcast("hi", include_self=False)
            envs = yield Receive(count=api.n - 1)
            yield Decide(sorted(e.src for e in envs))

        result = run([proto, proto, proto])
        assert result.decisions[1] == [0, 2]

    def test_receive_predicate_filters_and_buffers(self):
        def sender(api):
            yield Send(1, ("b", 2))
            yield Send(1, ("a", 1))
            yield Send(1, ("b", 3))
            yield Decide("done")

        def receiver(api):
            a_msgs = yield Receive(count=1, predicate=lambda e: e.payload[0] == "a")
            b_msgs = yield Receive(count=2, predicate=lambda e: e.payload[0] == "b")
            yield Decide((a_msgs[0].payload, sorted(e.payload for e in b_msgs)))

        result = run([sender, receiver], network=NetworkConfig(delay_model=ConstantDelay(1.0)))
        assert result.decisions[1] == (("a", 1), [("b", 2), ("b", 3)])

    def test_non_consuming_receive_leaves_mailbox_intact(self):
        def sender(api):
            yield Send(1, "x")
            yield Decide("done")

        def receiver(api):
            peeked = yield Receive(count=1, consume=False)
            consumed = yield Receive(count=1)
            assert peeked[0].payload == consumed[0].payload == "x"
            yield Decide("ok")

        result = run([sender, receiver])
        assert result.decisions[1] == "ok"

    def test_receive_blocks_until_count_met(self):
        def sender(api):
            yield Send(2, "one")
            yield Decide("s")

        def sender2(api):
            yield Send(2, "two")
            yield Decide("s")

        def receiver(api):
            envs = yield Receive(count=2)
            yield Decide(len(envs))

        result = run([sender, sender2, receiver])
        assert result.decisions[2] == 2

    def test_receive_zero_count_rejected(self):
        def proto(api):
            yield Receive(count=0)

        with pytest.raises(SimulationError):
            run([proto], stop_when="all_halted")

    def test_constant_delay_sets_delivery_time(self):
        def sender(api):
            yield Send(1, "x")
            yield Decide("s")

        def receiver(api):
            envs = yield Receive(count=1)
            yield Decide(envs[0].deliver_time - envs[0].send_time)

        result = run(
            [sender, receiver],
            network=NetworkConfig(delay_model=ConstantDelay(3.0)),
        )
        assert result.decisions[1] == pytest.approx(3.0)


class TestTimers:
    def test_timer_fires_after_delay(self):
        def proto(api):
            yield SetTimer(5.0, "t")
            envs = yield Receive(count=1, predicate=is_timer)
            yield Decide((envs[0].payload.name, api.now))

        result = run([proto])
        name, when = result.decisions[0]
        assert name == "t"
        assert when == pytest.approx(5.0)

    def test_rearming_timer_cancels_previous(self):
        def proto(api):
            yield SetTimer(1.0, "t")
            yield SetTimer(10.0, "t")  # re-arm before the first fires
            envs = yield Receive(count=1, predicate=is_timer)
            yield Decide(api.now)

        result = run([proto])
        assert result.decisions[0] == pytest.approx(10.0)

    def test_cancel_timer_prevents_fire(self):
        def proto(api):
            yield SetTimer(1.0, "boom")
            yield CancelTimer("boom")
            yield SetTimer(5.0, "ok")
            envs = yield Receive(count=1, predicate=is_timer)
            yield Decide(envs[0].payload.name)

        result = run([proto])
        assert result.decisions[0] == "ok"

    def test_two_named_timers_independent(self):
        def proto(api):
            yield SetTimer(2.0, "a")
            yield SetTimer(1.0, "b")
            first = yield Receive(count=1, predicate=is_timer)
            second = yield Receive(count=1, predicate=is_timer)
            yield Decide((first[0].payload.name, second[0].payload.name))

        result = run([proto])
        assert result.decisions[0] == ("b", "a")

    def test_negative_timer_rejected(self):
        def proto(api):
            yield SetTimer(-1.0, "t")

        with pytest.raises(SimulationError):
            run([proto], stop_when="all_halted")


class TestDecideAndHalt:
    def test_decide_twice_same_value_is_fine(self):
        def proto(api):
            yield Decide(7)
            yield Decide(7)

        result = run([proto])
        assert result.decisions == {0: 7}

    def test_decide_twice_different_values_raises(self):
        def proto(api):
            yield Decide(1)
            yield Decide(2)

        with pytest.raises(SimulationError):
            run([proto], stop_when="all_halted")

    def test_halt_stops_the_process(self):
        def proto(api):
            yield Decide("v")
            yield Halt()
            yield Decide("never")  # unreachable

        result = run([proto], stop_when="all_halted")
        assert result.decisions == {0: "v"}

    def test_generator_return_counts_as_halt(self):
        def proto(api):
            yield Annotate("step", 1)

        result = run([proto], stop_when="all_halted")
        halts = list(result.trace.of_kind(tr.HALT))
        assert len(halts) == 1

    def test_decided_value_raises_on_disagreement(self):
        def proto_a(api):
            yield Decide("a")

        def proto_b(api):
            yield Decide("b")

        result = run([proto_a, proto_b])
        with pytest.raises(SimulationError):
            result.decided_value()


class TestStopConditions:
    def test_stop_when_all_alive_decided(self):
        def proto(api):
            yield Decide(api.pid)
            while True:  # keeps running forever
                yield Receive(count=1)

        result = run([proto, proto])
        assert result.stop_reason == "stop_condition"
        assert set(result.decisions) == {0, 1}

    def test_queue_empty_stop(self):
        def proto(api):
            yield Annotate("x", 1)
            envs = yield Receive(count=1)  # never satisfied

        result = run([proto], stop_when="queue_empty")
        assert result.stop_reason == "queue_empty"

    def test_max_time_stop(self):
        def proto(api):
            while True:
                yield SetTimer(1.0, "tick")
                yield Receive(count=1, predicate=is_timer)

        result = run([proto], max_time=10.0, stop_when="all_halted")
        assert result.stop_reason == "max_time"
        assert result.final_time <= 10.0

    def test_max_events_stop(self):
        def proto(api):
            while True:
                yield SetTimer(0.1, "tick")
                yield Receive(count=1, predicate=is_timer)

        result = run([proto], max_events=50, stop_when="all_halted")
        assert result.stop_reason == "max_events"

    def test_custom_stop_predicate(self):
        def proto(api):
            while True:
                yield SetTimer(1.0, "tick")
                yield Receive(count=1, predicate=is_timer)

        result = run(
            [proto],
            stop_when=lambda runtime: runtime.now >= 5.0,
        )
        assert result.final_time >= 5.0

    def test_unknown_stop_when_rejected(self):
        def proto(api):
            yield Decide(1)

        with pytest.raises(ValueError):
            run([proto], stop_when="bogus")


class TestDeterminism:
    def _battery(self, seed):
        def proto(api):
            yield Broadcast(("v", api.pid, api.rng.random()))
            envs = yield Receive(count=api.n)
            yield Decide(tuple(sorted(e.payload[2] for e in envs)))

        return run([proto] * 4, seed=seed)

    def test_same_seed_same_execution(self):
        first = self._battery(123)
        second = self._battery(123)
        assert first.decisions == second.decisions
        assert first.final_time == second.final_time
        assert len(first.trace) == len(second.trace)

    def test_different_seed_different_randomness(self):
        first = self._battery(1)
        second = self._battery(2)
        assert first.decisions != second.decisions


class TestValidation:
    def test_needs_at_least_one_process(self):
        with pytest.raises(ValueError):
            AsyncRuntime([])

    def test_init_values_length_checked(self):
        def proto(api):
            yield Decide(1)

        with pytest.raises(ValueError):
            AsyncRuntime([FunctionProcess(proto)], init_values=[1, 2])

    def test_sync_ops_rejected(self):
        from repro.sim.ops import Exchange

        def proto(api):
            yield Exchange("v")

        with pytest.raises(SimulationError):
            run([proto], stop_when="all_halted")

    def test_api_exposes_parameters(self):
        seen = {}

        def proto(api):
            seen.update(pid=api.pid, n=api.n, t=api.t, init=api.init_value)
            seen["majority"] = api.majority()
            seen["quorum"] = api.quorum()
            yield Decide(1)

        run([proto], init_values=["x"], t=0)
        assert seen == {
            "pid": 0, "n": 1, "t": 0, "init": "x", "majority": 1, "quorum": 1,
        }
