"""Unit tests for message and envelope types."""

from repro.sim.messages import Envelope, Message


def test_message_fields():
    message = Message(1, 2, "hello")
    assert message.src == 1
    assert message.dst == 2
    assert message.payload == "hello"


def test_message_is_frozen():
    message = Message(0, 1, "x")
    try:
        message.src = 5
        raised = False
    except AttributeError:
        raised = True
    assert raised


def test_envelope_delegates_to_message():
    envelope = Envelope(Message(3, 4, {"k": 1}), send_time=1.0, deliver_time=2.5, seq=7)
    assert envelope.src == 3
    assert envelope.dst == 4
    assert envelope.payload == {"k": 1}
    assert envelope.send_time == 1.0
    assert envelope.deliver_time == 2.5
    assert envelope.seq == 7


def test_envelope_repr_contains_route():
    envelope = Envelope(Message(0, 1, "p"), 0.0, 1.0, 3)
    text = repr(envelope)
    assert "0->1" in text
    assert "#3" in text


def test_message_repr():
    assert "1->2" in repr(Message(1, 2, "x"))
