"""The binary wire codec: round-trips, malformed-frame fuzz, JSON interop.

The binary codec (`binary_dumps`/`binary_loads`) must be lossless over the
exact value model of the JSON codec — every registered message dataclass,
every container shape, every scalar edge — because the live transport
picks the codec per frame and mixed-codec clusters must agree on what was
sent.  Decoding is also the trust boundary of a live node: any byte
string, however mangled, must either decode or raise ``WireError``, never
escape with an arbitrary exception or wrong value.
"""

import enum
import random
from dataclasses import dataclass

import pytest

import repro.live.codec  # noqa: F401  (registers the algorithm messages)
from repro.algorithms.raft.log import Entry
from repro.algorithms.raft.messages import AppendEntries, AppendEntriesReply
from repro.algorithms.raft.state_machine import Put
from repro.core.confidence import ADOPT, Confidence
from repro.live.kv import KvBatch, TaggedPut
from repro.sim.serialize import (
    WireError,
    binary_dumps,
    binary_loads,
    register_wire_type,
    wire_dumps,
    wire_loads,
)
from tests.sim.test_wire_codec import SAMPLE_MESSAGES


class TestMessageRoundTrips:
    @pytest.mark.parametrize(
        "message", SAMPLE_MESSAGES, ids=lambda m: type(m).__name__
    )
    def test_every_registered_message_round_trips(self, message):
        data = binary_dumps(message)
        assert isinstance(data, bytes)
        back = binary_loads(data)
        assert type(back) is type(message)
        assert back == message

    def test_binary_frames_are_self_describing(self):
        # Binary tags stay below 0x20 so the transport can tell a binary
        # body from a JSON body by its first byte, without negotiation.
        for message in SAMPLE_MESSAGES:
            assert binary_dumps(message)[0] < 0x20
            assert wire_dumps(message)[0] >= 0x20

    def test_interned_names_paid_once(self):
        # A batch of N entries must not embed the class name N times.
        def frame(entries):
            return binary_dumps(
                AppendEntries(7, 1, 0, 0, tuple(entries), 0)
            )

        one = frame([Entry(7, Put("k", "v"))])
        eight = frame([Entry(7, Put(f"k{i}", "v")) for i in range(8)])
        per_entry = (len(eight) - len(one)) / 7
        assert per_entry < len(Entry.__module__) + len(Put.__module__)

    def test_nested_entries_recover_command_types(self):
        msg = AppendEntries(
            2, 0, 0, 0, (Entry(1, Put("k", (1, 2))), Entry(2, Put("j", 9))), 0
        )
        back = binary_loads(binary_dumps(msg))
        assert isinstance(back.entries, tuple)
        assert isinstance(back.entries[0].command, Put)
        assert back.entries[0].command.value == (1, 2)

    def test_enum_round_trips(self):
        for member in Confidence:
            assert binary_loads(binary_dumps(member)) is member
        payload = {"vac": (3, ADOPT, 1)}
        assert binary_loads(binary_dumps(payload)) == payload


class TestValueModelEdges:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            False,
            0,
            127,
            -128,
            128,
            -129,
            2**63 - 1,
            -(2**63),
            2**63,
            -(2**63) - 1,
            2**200,
            -(2**200),
            0.0,
            -2.5,
            1e300,
            "",
            "plain",
            "日本語 🚀",
            "x" * 300,
            b"",
            b"\x00\xff",
            bytes(range(256)) * 2,
            [],
            (),
            {},
            list(range(300)),
            tuple(range(300)),
            {i: str(i) for i in range(300)},
            {(1, 2): "pair", 7: "int", "s": "str"},
            [((("deep",),), {"k": [Put("a", (None, b"\x01"))]})],
        ],
        ids=lambda v: repr(v)[:32],
    )
    def test_round_trip(self, value):
        back = binary_loads(binary_dumps(value))
        assert back == value
        assert type(back) is type(value)

    def test_bool_int_distinction_survives(self):
        back = binary_loads(binary_dumps([True, 1, False, 0]))
        assert [type(v) for v in back] == [bool, int, bool, int]

    def test_unregistered_dataclass_rejected(self):
        @dataclass(frozen=True)
        class Unregistered:
            x: int

        with pytest.raises(WireError, match="not wire-registered"):
            binary_dumps(Unregistered(1))

    def test_unregistered_enum_rejected(self):
        class Color(enum.Enum):
            RED = 1

        with pytest.raises(WireError, match="not wire-registered"):
            binary_dumps(Color.RED)


class TestMalformedFrames:
    """Any mangled byte string raises WireError — nothing else escapes."""

    def test_empty_frame(self):
        with pytest.raises(WireError, match="empty"):
            binary_loads(b"")

    def test_unassigned_tags(self):
        assigned = {binary_dumps(v)[0] for v in (None, True, 0, "")}
        for tag in range(0x20):
            if tag in assigned:
                continue
            try:
                binary_loads(bytes([tag]))
            except WireError:
                continue
            except Exception as exc:  # pragma: no cover - diagnostic
                pytest.fail(f"tag 0x{tag:02x} raised {exc!r}")

    @pytest.mark.parametrize(
        "message", SAMPLE_MESSAGES, ids=lambda m: type(m).__name__
    )
    def test_every_truncation_rejected(self, message):
        data = binary_dumps(message)
        for cut in range(len(data)):
            with pytest.raises(WireError):
                binary_loads(data[:cut])

    @pytest.mark.parametrize(
        "message", SAMPLE_MESSAGES, ids=lambda m: type(m).__name__
    )
    def test_trailing_bytes_rejected(self, message):
        with pytest.raises(WireError, match="trailing"):
            binary_loads(binary_dumps(message) + b"\x00")

    def test_invalid_utf8_string_rejected(self):
        good = binary_dumps("ab")
        bad = good[:-2] + b"\xff\xfe"  # same length, invalid UTF-8 body
        with pytest.raises(WireError, match="UTF-8"):
            binary_loads(bad)

    def test_unknown_dataclass_name_rejected(self):
        data = binary_dumps(AppendEntriesReply(1, True, 2, 3))
        name = type(AppendEntriesReply(1, True, 2, 3)).__module__
        mangled = data.replace(name.encode(), name.upper().encode())
        assert mangled != data
        with pytest.raises(WireError, match="unknown wire dataclass"):
            binary_loads(mangled)

    def test_byte_flip_fuzz_never_escapes(self):
        # Flip every byte of real frames through several values: decoding
        # must produce a value or WireError, never another exception.
        corpus = [binary_dumps(m) for m in SAMPLE_MESSAGES]
        for data in corpus:
            for i in range(len(data)):
                for flip in (0x00, 0x01, 0x1F, 0x7F, 0xFF):
                    mangled = data[:i] + bytes([data[i] ^ flip]) + data[i + 1:]
                    try:
                        binary_loads(mangled)
                    except WireError:
                        pass

    def test_random_bytes_fuzz_never_escapes(self):
        rng = random.Random(0xC0DEC)
        for _ in range(3000):
            data = bytes(
                rng.randrange(256) for _ in range(rng.randrange(1, 48))
            )
            try:
                binary_loads(data)
            except WireError:
                pass


class TestShardTaggedFrameFuzz:
    """Shard-tagged peer frames survive the same hostility as plain ones."""

    @staticmethod
    def _frames():
        from repro.live.wire import BINARY_CODEC, JSON_CODEC, encode_peer_frame

        message = AppendEntries(3, 0, 2, 1, (Entry(2, Put("k", "v")),), 1)
        out = []
        for codec in (BINARY_CODEC, JSON_CODEC):
            for shard in (0, 1, 5, 200):
                out.append(
                    encode_peer_frame(
                        "msg", codec, payload=message, ts=0.25, shard=shard
                    )[4:]  # body only; length prefix is the stream's job
                )
        return out

    def test_tagged_frames_round_trip(self):
        from repro.live.wire import decode_body, parse_peer_frame

        for body in self._frames():
            kind, payload, ts, shard = parse_peer_frame(decode_body(body))
            assert kind == "msg"
            assert isinstance(payload, AppendEntries)
            assert ts == 0.25
            assert isinstance(shard, int) and shard >= 0

    def test_byte_flip_fuzz_never_escapes_or_misroutes(self):
        # Decoding a mangled tagged frame must yield WireError or a parse
        # that either rejects the frame (kind None) or reports a sane
        # shard — never an exception, never a negative/typed-wrong shard.
        from repro.live.wire import decode_body, parse_peer_frame

        for body in self._frames():
            for i in range(len(body)):
                for flip in (0x01, 0x1F, 0xFF):
                    mangled = body[:i] + bytes([body[i] ^ flip]) + body[i + 1:]
                    try:
                        frame = decode_body(mangled)
                    except WireError:
                        continue
                    kind, _payload, _ts, shard = parse_peer_frame(frame)
                    assert isinstance(shard, int) and not isinstance(shard, bool)
                    assert shard >= 0
                    assert kind in (None, "msg", "ping", "hello")

    def test_random_bytes_fuzz_never_escapes(self):
        from repro.live.wire import parse_peer_frame
        from repro.sim.serialize import binary_loads as loads

        rng = random.Random(0x5A4D)
        for _ in range(2000):
            data = bytes(
                rng.randrange(256) for _ in range(rng.randrange(1, 48))
            )
            try:
                frame = loads(data)
            except WireError:
                continue
            kind, _payload, _ts, shard = parse_peer_frame(frame)
            assert isinstance(shard, int) and shard >= 0
            assert kind in (None, "msg", "ping", "hello")


class TestJsonInterop:
    """Both codecs share one registry and one value model."""

    @pytest.mark.parametrize(
        "message", SAMPLE_MESSAGES, ids=lambda m: type(m).__name__
    )
    def test_cross_codec_agreement(self, message):
        via_binary = binary_loads(binary_dumps(message))
        via_json = wire_loads(wire_dumps(message))
        assert via_binary == via_json == message

    def test_binary_is_smaller_on_message_traffic(self):
        binary = sum(len(binary_dumps(m)) for m in SAMPLE_MESSAGES)
        text = sum(len(wire_dumps(m)) for m in SAMPLE_MESSAGES)
        assert binary < text

    def test_transport_detects_codec_per_frame(self):
        from repro.live.wire import decode_body, detect_codec

        message = AppendEntriesReply(7, True, 2, 13)
        body_b = binary_dumps(message)
        body_j = wire_dumps(message)
        assert detect_codec(body_b).name == "binary"
        assert detect_codec(body_j).name == "json"
        assert decode_body(body_b) == decode_body(body_j) == message

    def test_registration_serves_both_codecs(self):
        @dataclass(frozen=True)
        class BothWays:
            tag: str
            seq: int

        register_wire_type(BothWays)
        value = BothWays("x", 4)
        assert binary_loads(binary_dumps(value)) == value
        assert wire_loads(wire_dumps(value)) == value
