"""Behavioural tests for the synchronous lock-step runtime."""

import pytest

from repro.sim import trace as tr
from repro.sim.async_runtime import SimulationError
from repro.sim.ops import Annotate, Decide, Exchange, ExchangeTo, Halt
from repro.sim.process import FunctionProcess, Process
from repro.sim.sync_runtime import SyncRuntime


def run(protocols, **kwargs):
    processes = [
        p if isinstance(p, Process) else FunctionProcess(p) for p in protocols
    ]
    kwargs.setdefault("seed", 1)
    return SyncRuntime(processes, **kwargs).run()


class TestExchange:
    def test_everyone_receives_everyone(self):
        def proto(api):
            inbox = yield Exchange(api.pid * 10)
            yield Decide(dict(sorted(inbox.items())))

        result = run([proto, proto, proto])
        assert result.decisions[0] == {0: 0, 1: 10, 2: 20}
        assert result.decisions[1] == result.decisions[0]

    def test_none_payload_participates_silently(self):
        def speaker(api):
            inbox = yield Exchange("hello")
            yield Decide(sorted(inbox))

        def silent(api):
            inbox = yield Exchange(None)
            yield Decide(sorted(inbox))

        result = run([speaker, silent])
        assert result.decisions[0] == [0]  # only the speaker's message
        assert result.decisions[1] == [0]

    def test_multiple_rounds_stay_aligned(self):
        def proto(api):
            first = yield Exchange(("r1", api.pid))
            second = yield Exchange(("r2", api.pid))
            assert all(v[0] == "r1" for v in first.values())
            assert all(v[0] == "r2" for v in second.values())
            yield Decide("ok")

        result = run([proto, proto, proto])
        assert set(result.decisions.values()) == {"ok"}

    def test_exchange_to_equivocates(self):
        def byzantine(api):
            yield ExchangeTo({0: "left", 1: "right"})
            yield Halt()

        def observer(api):
            inbox = yield Exchange(None)
            yield Decide(inbox.get(2))

        result = run([observer, observer, byzantine], stop_pids=[0, 1])
        assert result.decisions[0] == "left"
        assert result.decisions[1] == "right"

    def test_exchange_to_partial_recipients(self):
        def byzantine(api):
            yield ExchangeTo({0: "only-you"})
            yield Halt()

        def observer(api):
            inbox = yield Exchange(None)
            yield Decide(inbox.get(2, "nothing"))

        result = run([observer, observer, byzantine], stop_pids=[0, 1])
        assert result.decisions[0] == "only-you"
        assert result.decisions[1] == "nothing"

    def test_exchange_to_unknown_pid_raises(self):
        def byzantine(api):
            yield ExchangeTo({99: "x"})

        with pytest.raises(SimulationError):
            run([byzantine], stop_when="all_done")


class TestCrashRounds:
    def test_crashed_process_sends_nothing_from_round(self):
        def proto(api):
            first = yield Exchange(api.pid)
            second = yield Exchange(api.pid)
            yield Decide((sorted(first), sorted(second)))

        result = run(
            [proto, proto, proto],
            crash_rounds={2: 1},
            stop_pids=[0, 1],
        )
        first, second = result.decisions[0]
        assert first == [0, 1, 2]  # round 0: everyone
        assert second == [0, 1]  # round 1 onward: pid 2 silent

    def test_crash_at_round_zero_is_total_silence(self):
        def proto(api):
            inbox = yield Exchange(api.pid)
            yield Decide(sorted(inbox))

        result = run([proto, proto], crash_rounds={1: 0}, stop_pids=[0])
        assert result.decisions[0] == [0]


class TestStopConditions:
    def test_all_decided_considers_only_stop_pids(self):
        def decider(api):
            yield Exchange("x")
            yield Decide("done")

        def forever(api):
            while True:
                yield Exchange("y")

        result = run([decider, forever], stop_pids=[0])
        assert result.stop_reason == "all_decided"
        assert result.decisions == {0: "done"}

    def test_all_done_waits_for_generators(self):
        def proto(api):
            yield Exchange(1)
            yield Annotate("done", True)

        result = run([proto, proto], stop_when="all_done")
        assert result.stop_reason == "all_done"

    def test_max_exchanges_cap(self):
        def forever(api):
            while True:
                yield Exchange("x")

        result = run([forever], max_exchanges=5)
        assert result.stop_reason == "max_rounds"
        assert result.exchanges == 5

    def test_decide_without_exchange_stops_immediately(self):
        def proto(api):
            yield Decide(42)

        result = run([proto])
        assert result.decisions == {0: 42}
        assert result.exchanges == 0


class TestSemantics:
    def test_decide_twice_different_raises(self):
        def proto(api):
            yield Decide(1)
            yield Decide(2)

        with pytest.raises(SimulationError):
            run([proto], stop_when="all_done")

    def test_async_ops_rejected(self):
        from repro.sim.ops import Send

        def proto(api):
            yield Send(0, "x")

        with pytest.raises(SimulationError):
            run([proto], stop_when="all_done")

    def test_round_no_visible_via_api(self):
        seen = []

        def proto(api):
            seen.append(api.round_no)
            yield Exchange(1)
            seen.append(api.round_no)
            yield Exchange(2)
            seen.append(api.round_no)
            yield Decide("ok")

        run([proto])
        assert seen == [0, 1, 2]

    def test_determinism_same_seed(self):
        def proto(api):
            inbox = yield Exchange(api.rng.random())
            yield Decide(tuple(sorted(inbox.values())))

        first = run([proto, proto], seed=9)
        second = run([proto, proto], seed=9)
        assert first.decisions == second.decisions

    def test_validation(self):
        with pytest.raises(ValueError):
            SyncRuntime([])
        def proto(api):
            yield Decide(1)
        with pytest.raises(ValueError):
            SyncRuntime([FunctionProcess(proto)], init_values=[1, 2])
        with pytest.raises(ValueError):
            SyncRuntime([FunctionProcess(proto)], stop_when="bogus")
