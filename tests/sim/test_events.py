"""Unit tests for the discrete-event queue."""

import pytest

from repro.sim.events import EventQueue


def test_pops_in_time_order():
    queue = EventQueue()
    queue.push(3.0, "c")
    queue.push(1.0, "a")
    queue.push(2.0, "b")
    assert [queue.pop()[1] for _ in range(3)] == ["a", "b", "c"]


def test_ties_break_by_insertion_order():
    queue = EventQueue()
    queue.push(1.0, "first")
    queue.push(1.0, "second")
    queue.push(1.0, "third")
    assert [queue.pop()[1] for _ in range(3)] == ["first", "second", "third"]


def test_pop_returns_time_and_event():
    queue = EventQueue()
    queue.push(4.5, "x")
    assert queue.pop() == (4.5, "x")


def test_peek_time_without_removal():
    queue = EventQueue()
    assert queue.peek_time() is None
    queue.push(2.0, "x")
    queue.push(1.0, "y")
    assert queue.peek_time() == 1.0
    assert len(queue) == 2


def test_len_and_bool():
    queue = EventQueue()
    assert not queue
    assert len(queue) == 0
    queue.push(1.0, "x")
    assert queue
    assert len(queue) == 1
    queue.pop()
    assert not queue


def test_negative_time_rejected():
    queue = EventQueue()
    with pytest.raises(ValueError):
        queue.push(-0.1, "x")


def test_interleaved_push_pop():
    queue = EventQueue()
    queue.push(5.0, "late")
    queue.push(1.0, "early")
    assert queue.pop()[1] == "early"
    queue.push(2.0, "mid")
    assert queue.pop()[1] == "mid"
    assert queue.pop()[1] == "late"


def test_iter_exposes_pending_events():
    queue = EventQueue()
    queue.push(1.0, "a")
    queue.push(2.0, "b")
    assert set(queue) == {"a", "b"}


def test_zero_time_allowed():
    queue = EventQueue()
    queue.push(0.0, "now")
    assert queue.pop() == (0.0, "now")


def test_many_events_sorted():
    queue = EventQueue()
    times = [7.0, 3.0, 9.0, 1.0, 5.0, 2.0, 8.0, 4.0, 6.0]
    for t in times:
        queue.push(t, t)
    popped = [queue.pop()[0] for _ in range(len(times))]
    assert popped == sorted(times)
