"""Unit tests for network delay/drop/partition models."""

import random

import pytest

from repro.sim.network import (
    ConstantDelay,
    ExponentialDelay,
    NetworkConfig,
    Partition,
    SkewedDelay,
    UniformDelay,
)


@pytest.fixture
def rng():
    return random.Random(42)


class TestDelayModels:
    def test_constant_delay(self, rng):
        model = ConstantDelay(2.5)
        assert model.delay(rng, 0, 1, 0.0) == 2.5
        assert model.delay(rng, 3, 4, 99.0) == 2.5

    def test_constant_delay_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ConstantDelay(0.0)

    def test_uniform_delay_within_bounds(self, rng):
        model = UniformDelay(1.0, 3.0)
        samples = [model.delay(rng, 0, 1, 0.0) for _ in range(200)]
        assert all(1.0 <= s <= 3.0 for s in samples)
        assert max(samples) - min(samples) > 0.5  # actually varies

    def test_uniform_delay_validates_bounds(self):
        with pytest.raises(ValueError):
            UniformDelay(3.0, 1.0)
        with pytest.raises(ValueError):
            UniformDelay(0.0, 1.0)

    def test_exponential_delay_respects_floor_and_cap(self, rng):
        model = ExponentialDelay(mean=1.0, min_latency=0.5, cap=2.0)
        samples = [model.delay(rng, 0, 1, 0.0) for _ in range(500)]
        assert all(0.5 <= s <= 2.0 for s in samples)
        assert any(s == 2.0 for s in samples)  # the cap engages

    def test_exponential_delay_validates(self):
        with pytest.raises(ValueError):
            ExponentialDelay(mean=-1.0)
        with pytest.raises(ValueError):
            ExponentialDelay(cap=0.01, min_latency=0.5)

    def test_skewed_delay_slows_marked_pids(self, rng):
        model = SkewedDelay(ConstantDelay(1.0), slow_pids=[2], factor=4.0)
        assert model.delay(rng, 0, 1, 0.0) == 1.0
        assert model.delay(rng, 2, 1, 0.0) == 4.0
        assert model.delay(rng, 0, 2, 0.0) == 4.0

    def test_skewed_delay_rejects_speedup(self):
        with pytest.raises(ValueError):
            SkewedDelay(ConstantDelay(1.0), [0], factor=0.5)


class TestPartition:
    def test_severs_cross_group_messages_in_window(self):
        partition = Partition(10.0, 20.0, [[0, 1], [2, 3]])
        assert partition.severed(0, 2, 15.0)
        assert partition.severed(3, 1, 10.0)

    def test_same_group_unaffected(self):
        partition = Partition(10.0, 20.0, [[0, 1], [2, 3]])
        assert not partition.severed(0, 1, 15.0)
        assert not partition.severed(2, 3, 15.0)

    def test_outside_window_unaffected(self):
        partition = Partition(10.0, 20.0, [[0, 1], [2, 3]])
        assert not partition.severed(0, 2, 9.9)
        assert not partition.severed(0, 2, 20.0)  # end is exclusive

    def test_unlisted_pids_stay_connected(self):
        partition = Partition(0.0, 10.0, [[0], [1]])
        assert not partition.severed(0, 5, 5.0)
        assert not partition.severed(5, 1, 5.0)


class TestNetworkConfig:
    def test_defaults_route_everything(self, rng):
        config = NetworkConfig()
        assert config.route(rng, 0, 1, 0.0) is not None

    def test_self_messages_use_self_delay(self, rng):
        config = NetworkConfig(self_delay=0.05)
        assert config.route(rng, 2, 2, 0.0) == 0.05

    def test_self_messages_never_dropped(self, rng):
        config = NetworkConfig(drop_rate=0.99)
        for _ in range(100):
            assert config.route(rng, 1, 1, 0.0) is not None

    def test_drop_rate_drops_roughly_that_fraction(self, rng):
        config = NetworkConfig(drop_rate=0.5)
        outcomes = [config.route(rng, 0, 1, 0.0) for _ in range(1000)]
        dropped = sum(1 for o in outcomes if o is None)
        assert 400 < dropped < 600

    def test_partition_drops_cross_messages(self, rng):
        config = NetworkConfig(partitions=[Partition(0.0, 10.0, [[0], [1]])])
        assert config.route(rng, 0, 1, 5.0) is None
        assert config.route(rng, 0, 1, 15.0) is not None

    def test_invalid_drop_rate_rejected(self):
        with pytest.raises(ValueError):
            NetworkConfig(drop_rate=1.0)
        with pytest.raises(ValueError):
            NetworkConfig(drop_rate=-0.1)

    def test_invalid_self_delay_rejected(self):
        with pytest.raises(ValueError):
            NetworkConfig(self_delay=0.0)
