"""Unit tests for Algorithm 2 (the AC + conciliator template)."""

import pytest

from repro.core.confidence import ADOPT, COMMIT, VACILLATE
from repro.core.template import AcTemplateConsensus
from repro.sim.async_runtime import AsyncRuntime

from tests.helpers import FixedConciliator, ScriptedAdoptCommit


def run_template(script, conciliator_value="C", init_values=None, **kwargs):
    n = len(script)
    adopt_commit = ScriptedAdoptCommit(script)
    conciliator = FixedConciliator(conciliator_value)
    processes = [
        AcTemplateConsensus(adopt_commit, conciliator, **kwargs)
        for _ in range(n)
    ]
    runtime = AsyncRuntime(
        processes,
        init_values=init_values or [f"init{i}" for i in range(n)],
        seed=0,
        stop_when="all_halted",
        max_time=100.0,
    )
    return runtime.run(), adopt_commit, conciliator


def test_commit_decides():
    result, _ac, _conc = run_template(
        {0: [(COMMIT, "v")]}, continue_after_decide=False
    )
    assert result.decisions == {0: "v"}


def test_adopt_routes_through_conciliator():
    script = {0: [(ADOPT, "a"), (COMMIT, "C")]}
    result, ac, conciliator = run_template(script, continue_after_decide=False)
    assert conciliator.calls == 1
    assert result.decisions == {0: "C"}
    assert ac.calls[1][2] == "C"  # conciliated value fed back


def test_always_run_mixer_invokes_conciliator_on_commit_too():
    script = {0: [(COMMIT, "v"), (COMMIT, "v")]}
    _result, ac, conciliator = run_template(
        script,
        continue_after_decide=True,
        always_run_mixer=True,
        max_rounds=2,
    )
    assert conciliator.calls == 2
    # ... but the committed value is kept, not the conciliator's.
    assert ac.calls[1][2] == "v"


def test_without_always_run_mixer_commit_skips_conciliator():
    script = {0: [(COMMIT, "v"), (COMMIT, "v")]}
    _result, _ac, conciliator = run_template(
        script, continue_after_decide=True, max_rounds=2
    )
    assert conciliator.calls == 0


def test_fixed_round_mode_decides_at_the_end():
    script = {0: [(ADOPT, "a"), (ADOPT, "b"), (ADOPT, "c")]}
    result, _ac, _conc = run_template(
        script,
        decide_on_commit=False,
        max_rounds=3,
        conciliator_value="k",
    )
    # Final value is the conciliator's output of the last round.
    assert result.decisions == {0: "k"}


def test_fixed_round_mode_commit_keeps_value():
    script = {0: [(COMMIT, "v"), (COMMIT, "v")]}
    result, _ac, conciliator = run_template(
        script,
        decide_on_commit=False,
        always_run_mixer=True,
        max_rounds=2,
        conciliator_value="ignored",
    )
    assert result.decisions == {0: "v"}
    assert conciliator.calls == 2  # participated, result discarded


def test_fixed_round_mode_requires_max_rounds():
    with pytest.raises(ValueError):
        AcTemplateConsensus(
            ScriptedAdoptCommit({0: []}),
            FixedConciliator("x"),
            decide_on_commit=False,
        )


def test_vacillate_from_ac_is_rejected():
    script = {0: [(VACILLATE, "x")]}
    with pytest.raises(ValueError):
        run_template(script, continue_after_decide=False)


def test_decide_early_then_halt_without_participation():
    script = {0: [(ADOPT, "a"), (COMMIT, "a"), (COMMIT, "a")]}
    _result, ac, _conc = run_template(script, continue_after_decide=False)
    assert len(ac.calls) == 2  # stopped right after the commit round
