"""Unit tests for the trace-rendering helpers."""

from repro.analysis.report import describe_run, event_lanes, round_table
from repro.core.confidence import ADOPT, COMMIT, VACILLATE
from repro.sim import trace as tr
from repro.sim.trace import Trace


def build_trace():
    trace = Trace()
    trace.record(0.5, tr.SEND, 0, "m")
    trace.record(1.0, tr.DELIVER, 1, "m")
    trace.record(1.0, tr.ANNOTATE, 0, ("vac", (1, ADOPT, 1)))
    trace.record(1.0, tr.ANNOTATE, 1, ("vac", (1, VACILLATE, 0)))
    trace.record(2.0, tr.ANNOTATE, 0, ("vac", (2, COMMIT, 1)))
    trace.record(2.1, tr.DECIDE, 0, 1)
    trace.record(3.0, tr.CRASH, 1)
    trace.record(5.0, tr.RESTART, 1)
    trace.record(8.0, tr.DECIDE, 1, 1)
    return trace


class TestRoundTable:
    def test_contains_rounds_and_outcomes(self):
        table = round_table(build_trace())
        assert "A:1" in table
        assert "V:0" in table
        assert "C:1" in table
        assert "p0" in table and "p1" in table

    def test_missing_outcome_rendered_as_dash(self):
        lines = round_table(build_trace()).splitlines()
        round2 = next(line for line in lines if line.startswith("2"))
        assert "-" in round2  # pid 1 produced no round-2 outcome

    def test_empty_trace(self):
        assert "no detector outcomes" in round_table(Trace())

    def test_correct_filter(self):
        table = round_table(build_trace(), correct=[1])
        assert "p0" not in table


class TestEventLanes:
    def test_markers_present(self):
        lanes = event_lanes(build_trace())
        assert "D" in lanes
        assert "X" in lanes
        assert "R" in lanes
        assert "legend" in lanes

    def test_one_lane_per_pid(self):
        lanes = event_lanes(build_trace()).splitlines()
        assert lanes[0].startswith("p0")
        assert lanes[1].startswith("p1")

    def test_empty_trace(self):
        assert "no lifecycle events" in event_lanes(Trace())

    def test_width_respected(self):
        lanes = event_lanes(build_trace(), width=30).splitlines()[0]
        bar = lanes[lanes.index("|") + 1 : lanes.rindex("|")]
        assert len(bar) == 30


class TestDescribeRun:
    def test_summarizes_agreement(self):
        text = describe_run(build_trace())
        assert "1 messages sent" in text
        assert "crashes at pids [1]" in text
        assert "2 processes decided 1" in text

    def test_flags_disagreement(self):
        trace = Trace()
        trace.record(1.0, tr.DECIDE, 0, "a")
        trace.record(1.0, tr.DECIDE, 1, "b")
        assert "DISAGREEMENT" in describe_run(trace)

    def test_no_decisions(self):
        assert "no process decided" in describe_run(Trace())
