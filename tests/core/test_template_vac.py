"""Unit tests for Algorithm 1 (the VAC + reconciliator template).

The templates are driven with scripted objects so every branch is exercised
deterministically, independent of any real protocol.
"""

import pytest

from repro.core.confidence import ADOPT, COMMIT, VACILLATE
from repro.core.properties import inputs_by_round, outcomes_by_round
from repro.core.template import VacTemplateConsensus
from repro.sim.async_runtime import AsyncRuntime
from repro.sim.ops import Annotate

from tests.helpers import FixedReconciliator, ScriptedVac


def run_template(script, reconciliator_value="R", init_values=None, **kwargs):
    n = len(script)
    vac = ScriptedVac(script)
    reconciliator = FixedReconciliator(reconciliator_value)
    processes = [
        VacTemplateConsensus(vac, reconciliator, **kwargs) for _ in range(n)
    ]
    runtime = AsyncRuntime(
        processes,
        init_values=init_values or [f"init{i}" for i in range(n)],
        seed=0,
        stop_when="all_halted",
        max_time=100.0,
    )
    return runtime.run(), vac, reconciliator


def test_commit_decides_and_halts_without_participation():
    result, _vac, _rec = run_template(
        {0: [(COMMIT, "v")]}, continue_after_decide=False
    )
    assert result.decisions == {0: "v"}


def test_commit_with_participation_keeps_running():
    script = {0: [(COMMIT, "v"), (COMMIT, "v"), (COMMIT, "v")]}
    result, vac, _rec = run_template(
        script, continue_after_decide=True, max_rounds=3
    )
    assert result.decisions == {0: "v"}
    assert len(vac.calls) == 3  # kept invoking the VAC after deciding


def test_adopt_updates_preference():
    script = {0: [(ADOPT, "adopted"), (COMMIT, "adopted")]}
    result, vac, _rec = run_template(script, continue_after_decide=False)
    assert result.decisions == {0: "adopted"}
    # Round 2's input must be the adopted value.
    assert vac.calls[1][2] == "adopted"


def test_vacillate_invokes_reconciliator():
    script = {0: [(VACILLATE, "x"), (COMMIT, "R")]}
    result, vac, reconciliator = run_template(
        script, continue_after_decide=False
    )
    assert reconciliator.calls == 1
    assert result.decisions == {0: "R"}
    assert vac.calls[1][2] == "R"  # reconciled value fed back in


def test_adopt_does_not_invoke_reconciliator():
    script = {0: [(ADOPT, "a"), (COMMIT, "a")]}
    _result, _vac, reconciliator = run_template(script, continue_after_decide=False)
    assert reconciliator.calls == 0


def test_max_rounds_caps_undecided_run():
    script = {0: [(VACILLATE, "x")] * 10}
    result, vac, _rec = run_template(
        script, continue_after_decide=False, max_rounds=4
    )
    assert result.decisions == {}
    assert len(vac.calls) == 4


def test_round_annotations_recorded():
    script = {0: [(VACILLATE, "x"), (ADOPT, "y"), (COMMIT, "y")]}
    result, _vac, _rec = run_template(script, continue_after_decide=False)
    outcomes = outcomes_by_round(result.trace, "vac")
    assert outcomes[1][0] == (VACILLATE, "x")
    assert outcomes[2][0] == (ADOPT, "y")
    assert outcomes[3][0] == (COMMIT, "y")
    inputs = inputs_by_round(result.trace)
    assert inputs[1][0] == "init0"
    assert inputs[2][0] == "R"  # after the reconciliator
    assert inputs[3][0] == "y"  # after the adopt


def test_init_hook_runs_before_first_round():
    events = []

    def init(api):
        events.append("init")
        yield Annotate("init_done", True)

    script = {0: [(COMMIT, "v")]}
    vac = ScriptedVac(script)
    process = VacTemplateConsensus(
        vac, FixedReconciliator("R"), continue_after_decide=False, init=init
    )
    AsyncRuntime([process], seed=0, stop_when="all_halted").run()
    assert events == ["init"]


def test_invalid_confidence_raises():
    class BadVac(ScriptedVac):
        def invoke(self, api, value, round_no):
            yield Annotate("noop", None)
            return "not-a-confidence", value

    process = VacTemplateConsensus(
        BadVac({0: []}), FixedReconciliator("R"), continue_after_decide=False
    )
    with pytest.raises(ValueError):
        AsyncRuntime([process], seed=0, stop_when="all_halted").run()


def test_two_processes_with_different_scripts():
    script = {
        0: [(COMMIT, "v")],
        1: [(ADOPT, "v"), (COMMIT, "v")],
    }
    result, _vac, _rec = run_template(script, continue_after_decide=False)
    assert result.decisions == {0: "v", 1: "v"}
