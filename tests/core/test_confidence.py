"""Unit tests for the confidence lattice."""

import pytest

from repro.core.confidence import ADOPT, COMMIT, VACILLATE, Confidence


def test_total_order():
    assert VACILLATE < ADOPT < COMMIT
    assert COMMIT > ADOPT > VACILLATE
    assert not COMMIT < ADOPT


def test_equality_and_identity():
    assert ADOPT == Confidence.ADOPT
    assert ADOPT is Confidence.ADOPT


def test_letters_match_paper_notation():
    assert VACILLATE.letter == "V"
    assert ADOPT.letter == "A"
    assert COMMIT.letter == "C"


def test_comparison_with_non_confidence_raises():
    with pytest.raises(TypeError):
        _ = ADOPT < 1


def test_max_picks_strongest():
    assert max([VACILLATE, COMMIT, ADOPT]) is COMMIT
    assert min([ADOPT, COMMIT]) is ADOPT


def test_repr():
    assert repr(COMMIT) == "Confidence.COMMIT"


def test_members_are_exactly_three():
    assert list(Confidence) == [VACILLATE, ADOPT, COMMIT]
