"""Unit tests for the analysis helpers (metrics + experiment harness)."""

import pytest

from repro.analysis.experiments import format_table, run_trials, summarize
from repro.analysis.metrics import (
    decision_latencies,
    decision_rounds,
    outcome_histogram,
    rounds_used,
)
from repro.core.confidence import ADOPT, COMMIT, VACILLATE
from repro.sim import trace as tr
from repro.sim.trace import Trace


def build_trace():
    trace = Trace()
    for pid in (0, 1):
        trace.record(0.0, tr.ANNOTATE, pid, ("round_input", (1, pid)))
        trace.record(1.0, tr.ANNOTATE, pid, ("vac", (1, VACILLATE, pid)))
        trace.record(2.0, tr.ANNOTATE, pid, ("round_input", (2, 0)))
    trace.record(3.0, tr.ANNOTATE, 0, ("vac", (2, COMMIT, 0)))
    trace.record(3.0, tr.ANNOTATE, 1, ("vac", (2, ADOPT, 0)))
    trace.record(3.5, tr.DECIDE, 0, 0)
    trace.record(4.0, tr.ANNOTATE, 1, ("round_input", (3, 0)))
    trace.record(5.0, tr.ANNOTATE, 1, ("vac", (3, COMMIT, 0)))
    trace.record(5.5, tr.DECIDE, 1, 0)
    return trace


class TestMetrics:
    def test_decision_rounds_first_commit(self):
        assert decision_rounds(build_trace()) == {0: 2, 1: 3}

    def test_rounds_used_counts_round_inputs(self):
        assert rounds_used(build_trace()) == 3

    def test_rounds_used_with_outcome_key(self):
        assert rounds_used(build_trace(), "vac") == 3

    def test_rounds_used_empty_trace(self):
        assert rounds_used(Trace()) == 0

    def test_decision_latencies(self):
        assert decision_latencies(build_trace()) == {0: 3.5, 1: 5.5}

    def test_outcome_histogram(self):
        histogram = outcome_histogram(build_trace())
        assert histogram[1] == {"V": 2}
        assert histogram[2] == {"C": 1, "A": 1}
        assert histogram[3] == {"C": 1}

    def test_outcome_histogram_correct_filter(self):
        histogram = outcome_histogram(build_trace(), correct=[0])
        assert histogram[2] == {"C": 1}


class TestSummarize:
    def test_basic_statistics(self):
        stats = summarize([1, 2, 3, 4, 5])
        assert stats.count == 5
        assert stats.mean == 3.0
        assert stats.median == 3.0
        assert stats.minimum == 1.0
        assert stats.maximum == 5.0

    def test_p90(self):
        stats = summarize(range(1, 101))
        assert stats.p90 == 90.0

    def test_single_value(self):
        stats = summarize([7.0])
        assert stats.stdev == 0.0
        assert stats.p90 == 7.0
        assert stats.ci95 == 0.0

    def test_ci95_shrinks_with_sample_size(self):
        small = summarize([1, 2, 3, 4, 5])
        large = summarize(list(range(1, 6)) * 20)
        assert large.ci95 < small.ci95

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_str_is_compact(self):
        text = str(summarize([1.0, 2.0]))
        assert "mean=1.50" in text
        assert "±" in text


def _seeded_trial(seed):
    """Module-level (hence picklable) trial: a seeded pseudo-experiment."""
    import random

    rng = random.Random(seed)
    return {"seed": seed, "draws": tuple(rng.random() for _ in range(16))}


class TestHarness:
    def test_run_trials_passes_seeds(self):
        results = run_trials(lambda seed: seed * 2, [1, 2, 3])
        assert results == [2, 4, 6]

    def test_run_trials_jobs_one_stays_serial(self):
        # jobs<=1 takes the in-process path: closures stay legal.
        assert run_trials(lambda s: s + 1, [5, 6], jobs=1) == [6, 7]

    def test_parallel_trials_identical_to_serial(self):
        # Parallelism must change wall-clock time only: same seeds, same
        # per-seed results, same order — byte-identical to serial.
        seeds = list(range(12))
        serial = run_trials(_seeded_trial, seeds)
        parallel = run_trials(_seeded_trial, seeds, jobs=2)
        assert parallel == serial
        assert [r["seed"] for r in parallel] == seeds

    def test_format_table_aligns_columns(self):
        table = format_table(["name", "n"], [["a", 1], ["long-name", 100]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert all(len(line) <= len(max(lines, key=len)) for line in lines)

    def test_format_table_stringifies_cells(self):
        table = format_table(["x"], [[None], [1.5]])
        assert "None" in table and "1.5" in table
