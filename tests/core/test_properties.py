"""Unit tests for the Section 2 property checkers (positive and negative)."""

import pytest

from repro.core.confidence import ADOPT, COMMIT, VACILLATE
from repro.core.properties import (
    PropertyViolation,
    check_ac_round,
    check_agreement,
    check_convergence,
    check_no_decision_without_commit,
    check_round_validity,
    check_termination,
    check_vac_round,
    check_validity,
    inputs_by_round,
    outcomes_by_round,
)
from repro.sim import trace as tr
from repro.sim.trace import Trace


class TestConsensusLevel:
    def test_agreement_accepts_unanimous(self):
        check_agreement({0: "v", 1: "v", 2: "v"})

    def test_agreement_rejects_split(self):
        with pytest.raises(PropertyViolation):
            check_agreement({0: "a", 1: "b"})

    def test_agreement_vacuous_when_empty(self):
        check_agreement({})

    def test_validity_accepts_input_value(self):
        check_validity({0: 1, 1: 1}, [0, 1, 1])

    def test_validity_rejects_foreign_value(self):
        with pytest.raises(PropertyViolation):
            check_validity({0: 2}, [0, 1])

    def test_termination_accepts_all_decided(self):
        check_termination({0: "v", 1: "v"}, [0, 1])

    def test_termination_rejects_missing(self):
        with pytest.raises(PropertyViolation):
            check_termination({0: "v"}, [0, 1])


class TestVacRound:
    def test_commit_with_matching_adopts_is_coherent(self):
        check_vac_round({0: (COMMIT, "u"), 1: (ADOPT, "u"), 2: (COMMIT, "u")})

    def test_commit_plus_vacillate_violates(self):
        with pytest.raises(PropertyViolation):
            check_vac_round({0: (COMMIT, "u"), 1: (VACILLATE, "x")})

    def test_commit_plus_different_adopt_value_violates(self):
        with pytest.raises(PropertyViolation):
            check_vac_round({0: (COMMIT, "u"), 1: (ADOPT, "w")})

    def test_two_commits_with_distinct_values_violate(self):
        with pytest.raises(PropertyViolation):
            check_vac_round({0: (COMMIT, "u"), 1: (COMMIT, "w")})

    def test_adopts_without_commit_must_share_value(self):
        check_vac_round({0: (ADOPT, "u"), 1: (VACILLATE, "anything")})
        with pytest.raises(PropertyViolation):
            check_vac_round({0: (ADOPT, "u"), 1: (ADOPT, "w")})

    def test_vacillate_values_unconstrained_without_commit(self):
        check_vac_round(
            {0: (ADOPT, "u"), 1: (VACILLATE, "a"), 2: (VACILLATE, "b")}
        )

    def test_all_vacillate_is_fine(self):
        check_vac_round({0: (VACILLATE, "a"), 1: (VACILLATE, "b")})


class TestAcRound:
    def test_commit_forces_common_value_everywhere(self):
        check_ac_round({0: (COMMIT, "u"), 1: (ADOPT, "u")})
        with pytest.raises(PropertyViolation):
            check_ac_round({0: (COMMIT, "u"), 1: (ADOPT, "w")})

    def test_vacillate_never_allowed(self):
        with pytest.raises(PropertyViolation):
            check_ac_round({0: (VACILLATE, "u")})

    def test_adopts_may_differ_without_commit(self):
        check_ac_round({0: (ADOPT, "a"), 1: (ADOPT, "b")})

    def test_two_distinct_commits_violate(self):
        with pytest.raises(PropertyViolation):
            check_ac_round({0: (COMMIT, "a"), 1: (COMMIT, "b")})


class TestConvergenceAndValidity:
    def test_convergence_on_unanimous_inputs(self):
        check_convergence({0: "v", 1: "v"}, {0: (COMMIT, "v"), 1: (COMMIT, "v")})

    def test_convergence_violated_by_adopt(self):
        with pytest.raises(PropertyViolation):
            check_convergence({0: "v", 1: "v"}, {0: (COMMIT, "v"), 1: (ADOPT, "v")})

    def test_convergence_vacuous_on_mixed_inputs(self):
        check_convergence({0: "a", 1: "b"}, {0: (VACILLATE, "a"), 1: (ADOPT, "b")})

    def test_round_validity_accepts_input_values(self):
        check_round_validity({0: "a", 1: "b"}, {0: (ADOPT, "b"), 1: (ADOPT, "a")})

    def test_round_validity_rejects_invented_values(self):
        with pytest.raises(PropertyViolation):
            check_round_validity({0: "a"}, {0: (ADOPT, "z")})


class TestTraceExtraction:
    def build_trace(self):
        trace = Trace()
        trace.record(0.0, tr.ANNOTATE, 0, ("round_input", (1, "a")))
        trace.record(0.0, tr.ANNOTATE, 1, ("round_input", (1, "b")))
        trace.record(1.0, tr.ANNOTATE, 0, ("vac", (1, ADOPT, "a")))
        trace.record(1.0, tr.ANNOTATE, 1, ("vac", (1, VACILLATE, "b")))
        trace.record(2.0, tr.ANNOTATE, 0, ("vac", (2, COMMIT, "a")))
        trace.record(2.0, tr.DECIDE, 0, "a")
        return trace

    def test_outcomes_by_round_groups_correctly(self):
        outcomes = outcomes_by_round(self.build_trace(), "vac")
        assert outcomes[1] == {0: (ADOPT, "a"), 1: (VACILLATE, "b")}
        assert outcomes[2] == {0: (COMMIT, "a")}

    def test_outcomes_filtered_by_correct_set(self):
        outcomes = outcomes_by_round(self.build_trace(), "vac", correct=[1])
        assert 0 not in outcomes[1]

    def test_inputs_by_round(self):
        inputs = inputs_by_round(self.build_trace())
        assert inputs[1] == {0: "a", 1: "b"}

    def test_no_decision_without_commit_passes(self):
        check_no_decision_without_commit(self.build_trace(), "vac")

    def test_no_decision_without_commit_catches_phantom_decide(self):
        trace = self.build_trace()
        trace.record(3.0, tr.DECIDE, 1, "b")  # pid 1 never committed
        with pytest.raises(PropertyViolation):
            check_no_decision_without_commit(trace, "vac")
