"""Unit tests for the workload generators."""

import pytest

from repro.analysis.workloads import (
    balanced_split,
    byzantine_on_first_kings,
    byzantine_spread,
    mid_broadcast_crashes,
    random_inputs,
    skewed,
    staggered_crashes,
    unanimous,
)
from repro.sim.failures import silent_strategy


class TestInputProfiles:
    def test_unanimous(self):
        assert unanimous(4, "v") == ["v"] * 4
        with pytest.raises(ValueError):
            unanimous(0)

    def test_balanced_split(self):
        assert balanced_split(4) == [0, 1, 0, 1]
        assert balanced_split(5, ("a", "b", "c")) == ["a", "b", "c", "a", "b"]
        with pytest.raises(ValueError):
            balanced_split(0)

    def test_skewed(self):
        inputs = skewed(8, 0.75)
        assert inputs.count(1) == 6
        assert inputs.count(0) == 2
        assert skewed(4, 1.0) == [1, 1, 1, 1]
        assert skewed(4, 0.0) == [0, 0, 0, 0]
        with pytest.raises(ValueError):
            skewed(4, 1.5)

    def test_random_inputs_deterministic(self):
        assert random_inputs(10, seed=3) == random_inputs(10, seed=3)
        assert random_inputs(10, seed=3) != random_inputs(10, seed=4)
        assert all(v in (0, 1) for v in random_inputs(50, seed=0))


class TestFaultPlacements:
    def test_first_kings_placement(self):
        placement = byzantine_on_first_kings(3, lambda: silent_strategy)
        assert sorted(placement) == [0, 1, 2]

    def test_spread_placement(self):
        placement = byzantine_spread(9, 3, lambda: silent_strategy)
        assert len(placement) == 3
        assert all(0 <= pid < 9 for pid in placement)
        assert byzantine_spread(9, 0, lambda: silent_strategy) == {}

    def test_staggered_crashes(self):
        plans = staggered_crashes([4, 2], first_at=1.0, gap=2.0)
        assert [(p.pid, p.at_time) for p in plans] == [(4, 1.0), (2, 3.0)]

    def test_mid_broadcast_crashes(self):
        plans = mid_broadcast_crashes([1, 3], after_sends=2)
        assert all(p.after_sends == 2 for p in plans)
        assert [p.pid for p in plans] == [1, 3]
