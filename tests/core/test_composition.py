"""Tests for the Section 5 constructions (VAC from two ACs; AC from VAC).

The compositions are exercised both with scripted ACs (deterministic branch
coverage) and with the real message-passing AC used by Ben-Or's setting —
the latter in ``tests/properties/test_hypothesis_composition.py``.
"""

from repro.core.composition import AdoptCommitFromVac, VacFromTwoAdoptCommits
from repro.core.confidence import ADOPT, COMMIT, VACILLATE
from repro.core.properties import check_vac_round
from repro.sim.async_runtime import AsyncRuntime

from tests.helpers import (
    EchoAdoptCommit,
    OneShotDetector,
    ScriptedAdoptCommit,
    ScriptedVac,
    collect_outcomes,
)


def run_one_shot(detector_factory, init_values, seed=0):
    processes = [OneShotDetector(detector_factory()) for _ in init_values]
    runtime = AsyncRuntime(
        processes, init_values=init_values, seed=seed, stop_when="all_halted"
    )
    result = runtime.run()
    return collect_outcomes(result.trace)


class TestVacFromTwoAcs:
    def test_double_commit_yields_commit(self):
        vac = VacFromTwoAdoptCommits(
            EchoAdoptCommit(COMMIT), EchoAdoptCommit(COMMIT)
        )
        outcomes = run_one_shot(lambda: vac, ["v"])
        assert outcomes[0] == (COMMIT, "v")

    def test_adopt_then_commit_yields_adopt(self):
        vac = VacFromTwoAdoptCommits(
            EchoAdoptCommit(ADOPT), EchoAdoptCommit(COMMIT)
        )
        outcomes = run_one_shot(lambda: vac, ["v"])
        assert outcomes[0] == (ADOPT, "v")

    def test_second_stage_adopt_yields_vacillate(self):
        for first in (ADOPT, COMMIT):
            vac = VacFromTwoAdoptCommits(
                EchoAdoptCommit(first), EchoAdoptCommit(ADOPT)
            )
            outcomes = run_one_shot(lambda: vac, ["v"])
            assert outcomes[0] == (VACILLATE, "v")

    def test_second_stage_receives_first_stage_value(self):
        first = ScriptedAdoptCommit({0: [(ADOPT, "rewritten")]})
        second = ScriptedAdoptCommit({0: [(COMMIT, "rewritten")]})
        vac = VacFromTwoAdoptCommits(first, second)
        run_one_shot(lambda: vac, ["original"])
        assert second.calls[0][2] == "rewritten"

    def test_stages_use_distinct_round_tags(self):
        first = ScriptedAdoptCommit({0: [(ADOPT, "v")]})
        second = ScriptedAdoptCommit({0: [(ADOPT, "v")]})
        vac = VacFromTwoAdoptCommits(first, second)
        run_one_shot(lambda: vac, ["v"])
        assert first.calls[0][1] == (1, "a")
        assert second.calls[0][1] == (1, "b")

    def test_mixed_population_is_vac_coherent(self):
        # A legal mixed execution: the first stage has no commit (inputs
        # were split u/w), the second stage commits at one process only.
        # The composition must yield adopt at the committer and vacillate
        # elsewhere — a coherent VAC round.
        first = ScriptedAdoptCommit(
            {0: [(ADOPT, "u")], 1: [(ADOPT, "u")], 2: [(ADOPT, "w")]}
        )
        second = ScriptedAdoptCommit(
            {0: [(COMMIT, "u")], 1: [(ADOPT, "u")], 2: [(ADOPT, "u")]}
        )
        vac = VacFromTwoAdoptCommits(first, second)
        outcomes = run_one_shot(lambda: vac, ["u", "u", "w"])
        assert outcomes[0] == (ADOPT, "u")
        assert outcomes[1] == (VACILLATE, "u")
        assert outcomes[2] == (VACILLATE, "u")
        check_vac_round(outcomes)

    def test_illegal_second_stage_convergence_would_be_incoherent(self):
        # Sanity: if the second AC *violated* its convergence property
        # (committing at one process, adopting at another, despite equal
        # inputs), the composed outcomes would break VAC coherence — this
        # is exactly why the construction's correctness leans on AC_b's
        # convergence, as documented in repro.core.composition.
        first = ScriptedAdoptCommit(
            {0: [(COMMIT, "u")], 1: [(ADOPT, "u")], 2: [(ADOPT, "u")]}
        )
        second = ScriptedAdoptCommit(
            {0: [(COMMIT, "u")], 1: [(COMMIT, "u")], 2: [(ADOPT, "u")]}
        )
        vac = VacFromTwoAdoptCommits(first, second)
        outcomes = run_one_shot(lambda: vac, ["u", "u", "u"])
        import pytest
        from repro.core.properties import PropertyViolation

        with pytest.raises(PropertyViolation):
            check_vac_round(outcomes)


class TestAcFromVac:
    def test_vacillate_coarsens_to_adopt(self):
        ac = AdoptCommitFromVac(ScriptedVac({0: [(VACILLATE, "x")]}))
        outcomes = run_one_shot(lambda: ac, ["x"])
        assert outcomes[0] == (ADOPT, "x")

    def test_adopt_and_commit_pass_through(self):
        for confidence in (ADOPT, COMMIT):
            ac = AdoptCommitFromVac(ScriptedVac({0: [(confidence, "x")]}))
            outcomes = run_one_shot(lambda: ac, ["x"])
            assert outcomes[0] == (confidence, "x")

    def test_round_tag_forwarded(self):
        vac = ScriptedVac({0: [(ADOPT, "x")]})
        ac = AdoptCommitFromVac(vac)
        run_one_shot(lambda: ac, ["x"])
        assert vac.calls[0][1] == 1
