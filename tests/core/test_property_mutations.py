"""Mutation-style self-tests for the Section-2 property checkers.

Each test plants a specific violation into otherwise-healthy synthetic
data (or a synthetic trace) and asserts the corresponding checker in
:mod:`repro.core.properties` raises :class:`PropertyViolation`.  This is
the test suite *of* the test oracles: a checker that silently accepts its
own target violation would make every sweep in :mod:`repro.dst`
meaningless.
"""

import pytest

from repro.core.confidence import ADOPT, COMMIT, VACILLATE
from repro.core.properties import (
    PropertyViolation,
    check_ac_round,
    check_agreement,
    check_all_rounds,
    check_convergence,
    check_no_decision_without_commit,
    check_round_validity,
    check_termination,
    check_vac_round,
    check_validity,
)
from repro.sim import trace as tr
from repro.sim.trace import Trace


def _trace(events):
    trace = Trace()
    for time, kind, pid, detail in events:
        trace.record(time, kind, pid, detail)
    return trace


# ----------------------------------------------------------------------
# Consensus-level checkers
# ----------------------------------------------------------------------


def test_agreement_accepts_unanimous_and_rejects_split():
    check_agreement({0: 1, 1: 1, 2: 1})
    with pytest.raises(PropertyViolation):
        check_agreement({0: 1, 1: 0})


def test_validity_rejects_invented_value():
    check_validity({0: 1, 1: 1}, [0, 1])
    with pytest.raises(PropertyViolation):
        check_validity({0: 2}, [0, 1])


def test_termination_rejects_missing_decider():
    check_termination({0: 1, 1: 1}, [0, 1])
    with pytest.raises(PropertyViolation):
        check_termination({0: 1}, [0, 1])


# ----------------------------------------------------------------------
# VAC round coherence
# ----------------------------------------------------------------------


def test_vac_round_accepts_coherent_commit():
    check_vac_round({0: (COMMIT, 1), 1: (ADOPT, 1), 2: (ADOPT, 1)})


def test_vac_round_rejects_two_distinct_commits():
    with pytest.raises(PropertyViolation):
        check_vac_round({0: (COMMIT, 1), 1: (COMMIT, 0)})


def test_vac_round_rejects_vacillate_alongside_commit():
    with pytest.raises(PropertyViolation):
        check_vac_round({0: (COMMIT, 1), 1: (VACILLATE, 0)})


def test_vac_round_rejects_adopt_of_other_value_alongside_commit():
    with pytest.raises(PropertyViolation):
        check_vac_round({0: (COMMIT, 1), 1: (ADOPT, 0)})


def test_vac_round_rejects_two_distinct_adopts_without_commit():
    check_vac_round({0: (ADOPT, 1), 1: (VACILLATE, 0)})
    with pytest.raises(PropertyViolation):
        check_vac_round({0: (ADOPT, 1), 1: (ADOPT, 0)})


# ----------------------------------------------------------------------
# AC round coherence
# ----------------------------------------------------------------------


def test_ac_round_rejects_any_vacillate():
    check_ac_round({0: (COMMIT, 1), 1: (ADOPT, 1)})
    with pytest.raises(PropertyViolation):
        check_ac_round({0: (ADOPT, 1), 1: (VACILLATE, 1)})


def test_ac_round_rejects_two_distinct_commits():
    with pytest.raises(PropertyViolation):
        check_ac_round({0: (COMMIT, 1), 1: (COMMIT, 0)})


def test_ac_round_rejects_commit_with_other_value_present():
    with pytest.raises(PropertyViolation):
        check_ac_round({0: (COMMIT, 1), 1: (ADOPT, 0)})


# ----------------------------------------------------------------------
# Convergence / round validity
# ----------------------------------------------------------------------


def test_convergence_rejects_non_commit_on_unanimous_inputs():
    check_convergence({0: 1, 1: 1}, {0: (COMMIT, 1), 1: (COMMIT, 1)})
    check_convergence({0: 0, 1: 1}, {0: (ADOPT, 1), 1: (VACILLATE, 0)})
    with pytest.raises(PropertyViolation):
        check_convergence({0: 1, 1: 1}, {0: (COMMIT, 1), 1: (ADOPT, 1)})


def test_round_validity_rejects_out_of_domain_output():
    check_round_validity({0: 0, 1: 1}, {0: (ADOPT, 1)})
    with pytest.raises(PropertyViolation):
        check_round_validity({0: 0, 1: 0}, {0: (ADOPT, 1)})


# ----------------------------------------------------------------------
# Trace-level checkers
# ----------------------------------------------------------------------


def test_decide_without_commit_detected_on_synthetic_trace():
    healthy = _trace(
        [
            (1.0, tr.ANNOTATE, 0, ("vac", (0, COMMIT, 1))),
            (2.0, tr.DECIDE, 0, 1),
        ]
    )
    check_no_decision_without_commit(healthy)
    planted = _trace(
        [
            (1.0, tr.ANNOTATE, 0, ("vac", (0, ADOPT, 1))),
            (2.0, tr.DECIDE, 0, 1),
        ]
    )
    with pytest.raises(PropertyViolation):
        check_no_decision_without_commit(planted)


def test_check_all_rounds_catches_planted_coherence_break():
    healthy = _trace(
        [
            (1.0, tr.ANNOTATE, 0, ("round_input", (0, 1))),
            (1.0, tr.ANNOTATE, 1, ("round_input", (0, 1))),
            (2.0, tr.ANNOTATE, 0, ("vac", (0, COMMIT, 1))),
            (2.0, tr.ANNOTATE, 1, ("vac", (0, COMMIT, 1))),
        ]
    )
    assert check_all_rounds(healthy) == 1
    planted = _trace(
        [
            (1.0, tr.ANNOTATE, 0, ("round_input", (0, 1))),
            (1.0, tr.ANNOTATE, 1, ("round_input", (0, 0))),
            (2.0, tr.ANNOTATE, 0, ("vac", (0, COMMIT, 1))),
            (2.0, tr.ANNOTATE, 1, ("vac", (0, COMMIT, 0))),
        ]
    )
    with pytest.raises(PropertyViolation):
        check_all_rounds(planted)


def test_check_all_rounds_catches_planted_convergence_break():
    planted = _trace(
        [
            (1.0, tr.ANNOTATE, 0, ("round_input", (0, 1))),
            (1.0, tr.ANNOTATE, 1, ("round_input", (0, 1))),
            (2.0, tr.ANNOTATE, 0, ("vac", (0, ADOPT, 1))),
            (2.0, tr.ANNOTATE, 1, ("vac", (0, ADOPT, 1))),
        ]
    )
    with pytest.raises(PropertyViolation):
        check_all_rounds(planted)


def test_check_all_rounds_catches_planted_validity_break():
    planted = _trace(
        [
            (1.0, tr.ANNOTATE, 0, ("round_input", (0, 0))),
            (1.0, tr.ANNOTATE, 1, ("round_input", (0, 0))),
            (2.0, tr.ANNOTATE, 0, ("vac", (0, ADOPT, 1))),
        ]
    )
    with pytest.raises(PropertyViolation):
        check_all_rounds(planted)
    assert check_all_rounds(planted, validity=False) == 1
