"""The runtime seam: virtual time, deadlock detection, memory sockets.

:class:`~repro.core.runtime.SimRuntime` is the foundation of live-stack
DST — everything in ``repro.live`` schedules and connects through it.
These tests pin its contract directly, without any consensus machinery
on top: virtual clocks advance instantly, plain ``asyncio`` primitives
work unchanged, the in-memory network behaves like loopback TCP
(ordering, EOF, refused connections, broken pipes), and a starved loop
raises instead of hanging forever.
"""

import asyncio
import time

import pytest

from repro.core.runtime import (
    AsyncioRuntime,
    SimRuntime,
    SimStarvationError,
    current_runtime,
    use_runtime,
)


@pytest.fixture
def rt():
    runtime = SimRuntime()
    yield runtime
    runtime.close()


class TestVirtualTime:
    def test_sleep_advances_virtual_not_wall_time(self, rt):
        async def main():
            start = rt.now()
            await rt.sleep(1000.0)
            return rt.now() - start

        wall = time.monotonic()
        advanced = rt.run(main())
        wall = time.monotonic() - wall
        assert advanced == pytest.approx(1000.0)
        assert wall < 5.0  # a thousand virtual seconds, instantly

    def test_plain_asyncio_primitives_run_unchanged(self, rt):
        """Production code keeps using bare asyncio; only I/O needs the
        seam.  sleep/gather/Event/wait_for must all work in virtual time."""

        async def main():
            event = asyncio.Event()

            async def setter():
                await asyncio.sleep(3.0)
                event.set()

            task = rt.spawn(setter())
            await asyncio.wait_for(event.wait(), timeout=10.0)
            await task
            return rt.now()

        assert rt.run(main()) == pytest.approx(3.0)

    def test_timers_fire_in_deadline_order(self, rt):
        fired = []

        async def main():
            rt.call_later(0.3, fired.append, "c")
            rt.call_later(0.1, fired.append, "a")
            rt.call_later(0.2, fired.append, "b")
            await rt.sleep(1.0)

        rt.run(main())
        assert fired == ["a", "b", "c"]

    def test_wait_for_timeout_uses_virtual_clock(self, rt):
        async def main():
            with pytest.raises(asyncio.TimeoutError):
                await asyncio.wait_for(asyncio.Event().wait(), timeout=60.0)
            return rt.now()

        assert rt.run(main()) == pytest.approx(60.0)

    def test_starved_loop_raises_instead_of_hanging(self, rt):
        async def main():
            # Nothing will ever set this and no timer is pending: a real
            # loop would block forever on select(None).
            await asyncio.Event().wait()

        with pytest.raises(SimStarvationError):
            rt.run(main())

    def test_run_timeout_is_virtual(self, rt):
        async def main():
            await rt.sleep(100.0)

        with pytest.raises(asyncio.TimeoutError):
            rt.run(main(), timeout=1.0)


class TestMemoryNetwork:
    def test_echo_roundtrip(self, rt):
        async def main():
            async def handler(reader, writer):
                data = await reader.readline()
                writer.write(b"echo:" + data)
                await writer.drain()
                writer.close()

            server = await rt.start_server(handler, "127.0.0.1", 20001)
            reader, writer = await rt.open_connection("127.0.0.1", 20001)
            writer.write(b"hello\n")
            await writer.drain()
            reply = await reader.readline()
            eof = await reader.read()
            writer.close()
            server.close()
            await server.wait_closed()
            return reply, eof

        reply, eof = rt.run(main())
        assert reply == b"echo:hello\n"
        assert eof == b""  # handler close delivered EOF to the client

    def test_connect_to_unbound_port_is_refused(self, rt):
        async def main():
            with pytest.raises(ConnectionRefusedError):
                await rt.open_connection("127.0.0.1", 29999)

        rt.run(main())

    def test_writes_preserve_order(self, rt):
        """Many small writes in one burst must arrive concatenated in
        order — framing depends on TCP's no-reorder guarantee."""

        async def main():
            received = []
            done = asyncio.Event()

            async def handler(reader, writer):
                received.append(await reader.readexactly(300))
                done.set()

            await rt.start_server(handler, "127.0.0.1", 20002)
            _, writer = await rt.open_connection("127.0.0.1", 20002)
            for i in range(100):
                writer.write(b"%03d" % i)
            await writer.drain()
            await asyncio.wait_for(done.wait(), 5.0)
            return received[0]

        data = rt.run(main())
        assert data == b"".join(b"%03d" % i for i in range(100))

    def test_drain_after_peer_close_raises_reset(self, rt):
        async def main():
            async def handler(reader, writer):
                writer.close()

            await rt.start_server(handler, "127.0.0.1", 20003)
            reader, writer = await rt.open_connection("127.0.0.1", 20003)
            await reader.read()  # EOF: the peer is gone
            with pytest.raises(ConnectionResetError):
                for _ in range(10):
                    writer.write(b"x")
                    await writer.drain()
                    await asyncio.sleep(0.01)

        rt.run(main())

    def test_closed_server_refuses_new_connections(self, rt):
        async def main():
            server = await rt.start_server(
                lambda r, w: w.close(), "127.0.0.1", 20004
            )
            server.close()
            await server.wait_closed()
            with pytest.raises(ConnectionRefusedError):
                await rt.open_connection("127.0.0.1", 20004)

        rt.run(main())

    def test_duplicate_bind_fails(self, rt):
        async def main():
            await rt.start_server(lambda r, w: None, "127.0.0.1", 20005)
            with pytest.raises(OSError):
                await rt.start_server(lambda r, w: None, "127.0.0.1", 20005)

        rt.run(main())


class TestAmbientRuntime:
    def test_default_is_asyncio(self):
        assert current_runtime().name == "asyncio"
        assert isinstance(current_runtime(), AsyncioRuntime)

    def test_use_runtime_scopes_the_ambient_default(self):
        sim = SimRuntime()
        try:
            with use_runtime(sim):
                assert current_runtime() is sim
                with use_runtime(AsyncioRuntime()):
                    assert current_runtime().name == "asyncio"
                assert current_runtime() is sim
            assert current_runtime().name == "asyncio"
        finally:
            sim.close()

    def test_sim_run_installs_itself_as_ambient(self):
        sim = SimRuntime()
        try:
            assert sim.run(_ambient_name()) == "sim"
        finally:
            sim.close()
        assert current_runtime().name == "asyncio"


async def _ambient_name():
    return current_runtime().name
