"""Tests for the ``python -m repro`` command-line demo runner."""

import subprocess
import sys

import pytest

from repro.__main__ import build_parser, main


def run_cli(*argv):
    return main(list(argv))


class TestMain:
    def test_ben_or(self, capsys):
        assert run_cli("ben-or", "--n", "5", "--seed", "7", "--quiet") == 0
        out = capsys.readouterr().out
        assert "5 processes decided" in out

    def test_ben_or_with_crash(self, capsys):
        assert (
            run_cli("ben-or", "--n", "5", "--seed", "7", "--crash", "4@3", "--quiet")
            == 0
        )
        out = capsys.readouterr().out
        assert "crashes at pids [4]" in out
        assert "4 processes decided" in out

    def test_phase_king(self, capsys):
        assert run_cli("phase-king", "--n", "7", "--byzantine", "2", "--quiet") == 0
        out = capsys.readouterr().out
        assert "exchanges; correct decisions" in out

    def test_phase_king_rejects_bad_resilience(self, capsys):
        assert run_cli("phase-king", "--n", "4", "--byzantine", "2") == 2
        assert "need 3t < n" in capsys.readouterr().err

    def test_phase_queen(self, capsys):
        assert run_cli("phase-queen", "--n", "9", "--byzantine", "2", "--quiet") == 0
        out = capsys.readouterr().out
        assert "exchanges; correct decisions" in out

    def test_phase_queen_rejects_bad_resilience(self, capsys):
        assert run_cli("phase-queen", "--n", "5", "--byzantine", "2") == 2
        assert "need 4t < n" in capsys.readouterr().err

    def test_paxos(self, capsys):
        assert run_cli("paxos", "--n", "5", "--seed", "2", "--quiet") == 0
        assert "decided" in capsys.readouterr().out

    def test_paxos_with_crash(self, capsys):
        assert run_cli("paxos", "--n", "5", "--crash", "0@4", "--quiet") == 0
        out = capsys.readouterr().out
        assert "crashes at pids [0]" in out

    def test_chandra_toueg(self, capsys):
        assert run_cli("chandra-toueg", "--n", "5", "--quiet") == 0
        assert "decided" in capsys.readouterr().out

    def test_chandra_toueg_with_crash(self, capsys):
        assert run_cli("chandra-toueg", "--n", "5", "--crash", "0@1", "--quiet") == 0
        out = capsys.readouterr().out
        assert "crashes at pids [0]" in out

    def test_raft(self, capsys):
        assert run_cli("raft", "--n", "3", "--seed", "1") == 0
        out = capsys.readouterr().out
        assert "leaders: term" in out
        assert "3 processes decided" in out

    def test_raft_with_crash_restart_spec(self, capsys):
        assert run_cli("raft", "--n", "5", "--crash", "0@12@200", "--quiet") == 0
        assert "decided" in capsys.readouterr().out

    def test_decentralized_raft(self, capsys):
        assert run_cli("decentralized-raft", "--n", "4", "--quiet") == 0
        assert "decided" in capsys.readouterr().out

    def test_shared_coin(self, capsys):
        assert run_cli("shared-coin", "--n", "5", "--quiet") == 0
        assert "decided" in capsys.readouterr().out

    def test_shared_memory(self, capsys):
        assert run_cli("shared-memory", "--n", "4", "--quiet") == 0
        out = capsys.readouterr().out
        assert "register steps" in out

    def test_verbose_mode_prints_round_table(self, capsys):
        assert run_cli("ben-or", "--n", "4", "--seed", "2") == 0
        out = capsys.readouterr().out
        assert "round" in out
        assert "inputs:" in out


class TestParser:
    def test_rejects_unknown_algorithm(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["quantum-consensus"])

    def test_bad_crash_spec_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["ben-or", "--crash", "nope"])

    def test_crash_spec_with_restart(self):
        args = build_parser().parse_args(["ben-or", "--crash", "1@5@9"])
        plan = args.crash[0]
        assert (plan.pid, plan.at_time, plan.restart_at) == (1, 5.0, 9.0)


def test_module_invocation():
    result = subprocess.run(
        [sys.executable, "-m", "repro", "ben-or", "--n", "4", "--quiet"],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0
    assert "decided" in result.stdout
