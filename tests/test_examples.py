"""Integration tests: every example script must run clean, end to end.

Each example is executed as a subprocess (exactly as a user would run it)
and checked for a zero exit code and its key output lines.
"""

import pathlib
import subprocess
import sys

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_examples_directory_contents():
    names = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))
    assert names == [
        "build_your_own_object.py",
        "byzantine_agreement.py",
        "paxos_vs_raft.py",
        "quickstart.py",
        "replicated_log.py",
        "shared_memory_consensus.py",
        "trace_inspection.py",
    ]


def test_paxos_vs_raft():
    out = run_example("paxos_vs_raft.py")
    assert "Raft" in out and "Paxos" in out
    assert "per-ballot VAC outcomes" in out
    assert "decided:" in out


def test_quickstart():
    out = run_example("quickstart.py")
    assert "decided value: 1" in out
    assert "agreement + validity: OK" in out
    assert "crashed pids:  [4]" in out


def test_byzantine_agreement():
    out = run_example("byzantine_agreement.py")
    assert "agreement: OK" in out
    assert "mode=early" in out and "AGREEMENT VIOLATED" in out
    assert "mode=fixed" in out and "agreement holds" in out


def test_replicated_log():
    out = run_example("replicated_log.py")
    assert "all state machines identical: OK" in out
    assert "'alice': 130" in out


def test_build_your_own_object():
    out = run_example("build_your_own_object.py")
    assert "homemade VAC passed coherence/convergence checks" in out


def test_shared_memory_consensus():
    out = run_example("shared_memory_consensus.py")
    assert out.count("decisions:") == 3  # three schedulers
    assert "hostile alternator" in out


def test_trace_inspection():
    out = run_example("trace_inspection.py")
    assert "per-round VAC outcomes" in out
    assert "legend: D decide, X crash, R restart, H halt" in out
