"""WAL format fuzzing — the trust boundary of crash recovery.

A recovering node reads whatever the disk gives back after a power
failure.  Whatever the damage — a flipped byte anywhere in a segment, a
truncation at any offset, a duplicated tail from a misdirected write —
recovery must yield a clean verdict (a prefix of the written records,
a torn-tail truncation, or a ``WalError``) and must **never** produce a
record that was not written.  Mirrors the malformed-frame fuzz style of
``tests/sim/test_binary_codec.py``.
"""

import random

import pytest

from repro.storage import (
    RaftStorage,
    WalCheckpoint,
    WalCorruptionError,
    WalEntry,
    WalError,
    WalTerm,
    encode_frame,
    recover_wal,
    scan_frames,
)

#: A representative record run: checkpoint, scalar updates, entries with
#: varied body sizes (so frame boundaries land at many different offsets).
CORPUS = [
    WalCheckpoint(3, 1, 0, 0),
    WalTerm(4, None),
    WalEntry(1, 4, ("put", "alpha", "x" * 5)),
    WalTerm(4, 2),
    WalEntry(2, 4, ("put", "beta", list(range(12)))),
    WalEntry(3, 4, {"op": "del", "key": "gamma"}),
]

BLOB = b"".join(encode_frame(record) for record in CORPUS)


def assert_no_invented_records(records):
    """Recovered records must be a prefix of what was actually written."""
    assert records == CORPUS[: len(records)]


class TestByteFlip:
    @pytest.mark.parametrize("offset", range(len(BLOB)))
    def test_every_single_byte_flip_is_detected(self, offset):
        mangled = bytearray(BLOB)
        mangled[offset] ^= 0xFF
        records, damage, reason = scan_frames(bytes(mangled))
        if damage is None:
            # Astronomically unlikely (a flip that preserves CRC and
            # decodes identically); a same-value flip is impossible with
            # XOR 0xFF.  If the scan claims clean, the records must
            # STILL be exactly what was written.
            assert records == CORPUS
        else:
            assert reason
            # Everything before the damaged frame decodes intact, and
            # nothing fabricated appears.
            assert_no_invented_records(records)
            assert damage <= offset, (
                "damage must be reported at or before the flipped byte's "
                "frame, never after it"
            )

    def test_random_multi_flips(self):
        rng = random.Random(0xF1A9)
        for _ in range(200):
            mangled = bytearray(BLOB)
            for _ in range(rng.randint(1, 6)):
                mangled[rng.randrange(len(mangled))] ^= 1 << rng.randrange(8)
            records, damage, _ = scan_frames(bytes(mangled))
            if damage is None:
                assert records == CORPUS
            else:
                assert_no_invented_records(records)


class TestTruncation:
    @pytest.mark.parametrize("cut", range(len(BLOB) + 1))
    def test_truncate_at_every_offset_yields_clean_prefix(self, cut):
        records, damage, reason = scan_frames(BLOB[:cut])
        assert_no_invented_records(records)
        if cut == len(BLOB):
            assert damage is None
        elif damage is None:
            # A cut exactly on a frame boundary looks like a clean file.
            assert cut == sum(
                len(encode_frame(r)) for r in CORPUS[: len(records)]
            )
        else:
            assert damage <= cut
            assert reason

    @pytest.mark.parametrize("cut", [1, 7, 8, 9, len(BLOB) // 2, len(BLOB) - 1])
    def test_truncated_segment_recovers_as_torn_tail(self, tmp_path, cut):
        with open(tmp_path / "wal-00000001.log", "wb") as fh:
            fh.write(BLOB[:cut])
        recovery = recover_wal(str(tmp_path))
        assert_no_invented_records(recovery.records)
        if recovery.records != CORPUS:
            assert recovery.torn_tail


class TestDuplicateTail:
    def test_duplicated_last_frame_is_rejected_by_replay(self, tmp_path):
        # A crashed-then-retried append can leave the final frame twice.
        # The frame itself is valid (its CRC passes), so the format layer
        # decodes both copies — the replay layer must then refuse the
        # out-of-order duplicate rather than corrupt the log.
        tail = encode_frame(CORPUS[-1])
        with open(tmp_path / "wal-00000001.log", "wb") as fh:
            fh.write(BLOB + tail)
        records, damage, _ = scan_frames(BLOB + tail)
        assert damage is None
        assert records == CORPUS + [CORPUS[-1]]
        # Replay treats the duplicate index as a (harmless) rewrite of
        # the same position: recovery converges to the written state.
        storage = RaftStorage(str(tmp_path))
        assert not storage.quarantined
        assert storage.term == 4 and storage.voted_for == 2
        assert [e.command for e in storage.entries] == [
            r.command for r in CORPUS if isinstance(r, WalEntry)
        ]
        storage.close()

    def test_duplicated_mid_blob_suffix_never_invents_state(self, tmp_path):
        # Misdirected-write model: an earlier chunk re-appears at the
        # tail.  Scan decodes it (frames are valid); replay must either
        # land on a written prefix state or quarantine — never fabricate.
        chunk = b"".join(encode_frame(r) for r in CORPUS[1:3])
        with open(tmp_path / "wal-00000001.log", "wb") as fh:
            fh.write(BLOB + chunk)
        try:
            storage = RaftStorage(str(tmp_path))
        except WalError:  # pragma: no cover - acceptable alternative
            return
        if not storage.quarantined:
            commands = [e.command for e in storage.entries]
            written = [r.command for r in CORPUS if isinstance(r, WalEntry)]
            assert commands == written[: len(commands)]
        storage.close()


class TestGarbageFiles:
    @pytest.mark.parametrize("seed", range(20))
    def test_pure_noise_segments_never_crash_recovery(self, tmp_path, seed):
        rng = random.Random(seed)
        noise = bytes(rng.randrange(256) for _ in range(rng.randrange(1, 512)))
        with open(tmp_path / "wal-00000001.log", "wb") as fh:
            fh.write(noise)
        # A single noise segment is indistinguishable from a torn first
        # rotation: recovery must come up empty or raise WalError —
        # anything else means fabricated state.
        try:
            recovery = recover_wal(str(tmp_path))
        except WalError:
            return
        assert recovery.records == []
