"""Live-cluster crash recovery — kill -9 every node, cold restart from disk.

The ISSUE's acceptance criterion, verbatim: a 3-node cluster with a
``--data-dir`` must survive kill -9 of every node in turn, each
replacement performing **real** recovery (term, vote, log, snapshot read
back from its WAL), and a full-cluster power failure must preserve every
acknowledged write.  Marked ``storage``: opt in with ``pytest -m storage``.
"""

import asyncio
import os

import pytest

from repro.live import AsyncKVClient, LiveKVCluster
from repro.storage import RaftStorage

pytestmark = pytest.mark.storage

# CI runs this suite once per commit-pipeline mode: inline fsync on the
# event loop, and the pipelined fsync thread (REPRO_SYNC_MODE=pipelined).
FAST = dict(
    election_timeout=(0.15, 0.3),
    heartbeat_interval=0.05,
    sync_mode=os.environ.get("REPRO_SYNC_MODE", "inline"),
)


def run(coro, timeout=180.0):
    return asyncio.run(asyncio.wait_for(coro, timeout))


async def _read_back(client, expected):
    for key, value in expected.items():
        response = await client.get(key, linearizable=True)
        assert response["found"], f"acked key {key!r} vanished"
        assert response["value"] == value


class TestRollingKillMinus9:
    def test_every_node_survives_kill_and_cold_restart(self, tmp_path):
        async def scenario():
            cluster = LiveKVCluster(
                3, seed=11, data_dir=str(tmp_path), **FAST
            )
            await cluster.start()
            client = AsyncKVClient(cluster.cluster, request_timeout=2.0)
            expected = {}
            try:
                await cluster.wait_for_leader(20.0)
                for round_no, victim in enumerate((0, 1, 2)):
                    key = f"round-{round_no}"
                    await client.put(key, f"value-{round_no}")
                    expected[key] = f"value-{round_no}"
                    torn = round_no % 2 == 1  # alternate torn final frames
                    await cluster.kill(victim, torn=torn)
                    await cluster.wait_for_leader(20.0, exclude=(victim,))
                    # Majority still up: acked writes stay readable.
                    await _read_back(client, expected)
                    await cluster.restart(victim)
                    await cluster.wait_for_leader(20.0)
                    # The revived node recovered real state from disk.
                    server = cluster.servers[victim]
                    storage = server.shards[0].storage
                    assert storage is not None
                    assert (
                        storage.term > 0 or storage.entries
                    ), "restart skipped recovery: node came back empty"
                await _read_back(client, expected)
            finally:
                await client.close()
                await cluster.stop()

        run(scenario())

    def test_full_power_failure_preserves_acked_writes(self, tmp_path):
        async def scenario():
            cluster = LiveKVCluster(
                3, seed=13, data_dir=str(tmp_path), **FAST
            )
            await cluster.start()
            client = AsyncKVClient(cluster.cluster, request_timeout=2.0)
            expected = {}
            try:
                await cluster.wait_for_leader(20.0)
                for i in range(10):
                    await client.put(f"k{i}", f"v{i}")
                    expected[f"k{i}"] = f"v{i}"
                # Pull the plug on the whole rack at once.
                for pid in list(cluster.alive()):
                    await cluster.kill(pid)
                assert cluster.alive() == []
                for pid in range(3):
                    await cluster.restart(pid)
                await cluster.wait_for_leader(30.0)
                await _read_back(client, expected)
            finally:
                await client.close()
                await cluster.stop()

        run(scenario())


class TestHarnessRestartIsRealRecovery:
    """Regression pin: ``LiveKVCluster.restart`` must go through disk.

    The harness used to rebuild a restarted node as a blank server that
    re-learned everything over the network — fine for availability
    testing, useless for proving durability.  With a ``data_dir`` the
    replacement must read its pre-crash Figure-2 state back before it
    says hello to anyone.
    """

    def test_restarted_node_recovers_state_not_emptiness(self, tmp_path):
        async def scenario():
            cluster = LiveKVCluster(
                3, seed=17, data_dir=str(tmp_path), **FAST
            )
            await cluster.start()
            client = AsyncKVClient(cluster.cluster, request_timeout=2.0)
            try:
                await cluster.wait_for_leader(20.0)
                for i in range(5):
                    await client.put(f"pin-{i}", str(i))
                victim = cluster.leader_pid()
                await cluster.kill(victim)

                # Inspect the victim's directory offline: its durable log
                # must already hold the acked entries.
                offline = RaftStorage(
                    os.path.join(cluster.node_data_dir(victim), "shard-0")
                )
                persisted = offline.snapshot_index + len(offline.entries)
                offline.close()
                assert persisted >= 5, "acked writes missing from the WAL"

                server = await cluster.restart(victim)
                storage = server.shards[0].storage
                assert storage is not None
                recovered = storage.snapshot_index + len(storage.entries)
                assert recovered >= 5, (
                    "restart handed the node an empty log instead of "
                    "replaying its WAL"
                )
                await cluster.wait_for_leader(20.0)
                response = await client.get("pin-0", linearizable=True)
                assert response["found"] and response["value"] == "0"
            finally:
                await client.close()
                await cluster.stop()

        run(scenario())

    def test_diskless_restart_still_comes_back_empty(self, tmp_path):
        """Contrast pin: without a data_dir the old semantics remain —
        a restarted node starts blank and relies on replication."""

        async def scenario():
            cluster = LiveKVCluster(3, seed=19, **FAST)
            await cluster.start()
            client = AsyncKVClient(cluster.cluster, request_timeout=2.0)
            try:
                await cluster.wait_for_leader(20.0)
                await client.put("k", "v")
                victim = cluster.leader_pid()
                await cluster.kill(victim)
                server = await cluster.restart(victim)
                assert server.shards[0].storage is None
                await cluster.wait_for_leader(20.0)
                response = await client.get("k", linearizable=True)
                assert response["found"] and response["value"] == "v"
            finally:
                await client.close()
                await cluster.stop()

        run(scenario())
