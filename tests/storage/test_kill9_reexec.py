"""Real kill -9 against real ``repro serve`` processes.

The in-process harness simulates power failure; this suite does it for
real: OS processes running ``python -m repro serve --data-dir``, killed
with SIGKILL (no atexit, no flush, no goodbye), then **re-executed** —
the restarted process must recover its Raft state from its data
directory, and a whole-cluster kill must preserve every acknowledged
write.  Marked ``storage``: opt in with ``pytest -m storage``.
"""

import asyncio
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.live import AsyncKVClient, ClusterConfig

pytestmark = pytest.mark.storage

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))


def run(coro, timeout=240.0):
    return asyncio.run(asyncio.wait_for(coro, timeout))


def peers_spec(cluster):
    return ",".join(
        f"{s.host}:{s.port}:{s.client_port}" for s in cluster.nodes
    )


def serve_command(cluster, pid, data_dir):
    return [
        sys.executable,
        "-m",
        "repro",
        "serve",
        "--pid",
        str(pid),
        "--peers",
        peers_spec(cluster),
        "--election-timeout",
        "0.15,0.3",
        "--heartbeat",
        "0.05",
        "--data-dir",
        os.path.join(data_dir, f"node-{pid}"),
        # CI exercises both commit-pipeline modes (inline | pipelined).
        "--sync-mode",
        os.environ.get("REPRO_SYNC_MODE", "inline"),
    ]


def spawn(cluster, pid, data_dir):
    env = dict(os.environ)
    src = os.path.join(REPO_ROOT, "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        serve_command(cluster, pid, data_dir),
        cwd=REPO_ROOT,
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def sigkill(proc):
    proc.send_signal(signal.SIGKILL)
    proc.wait(timeout=30)


async def put_with_retry(client, key, value, deadline=60.0):
    stop = time.monotonic() + deadline
    while True:
        try:
            return await client.put(key, value)
        except Exception:
            if time.monotonic() > stop:
                raise
            await asyncio.sleep(0.2)


async def get_with_retry(client, key, deadline=60.0):
    stop = time.monotonic() + deadline
    while True:
        try:
            return await client.get(key, linearizable=True)
        except Exception:
            if time.monotonic() > stop:
                raise
            await asyncio.sleep(0.2)


class TestKill9ReExec:
    def test_sigkill_and_reexec_recovers_durable_state(self, tmp_path):
        cluster = ClusterConfig.localhost(3)
        data_dir = str(tmp_path)
        procs = {}

        async def scenario():
            client = AsyncKVClient(cluster, request_timeout=2.0)
            try:
                for pid in range(3):
                    procs[pid] = spawn(cluster, pid, data_dir)
                expected = {}
                for i in range(5):
                    await put_with_retry(client, f"k{i}", f"v{i}")
                    expected[f"k{i}"] = f"v{i}"

                # kill -9 one node, re-exec the same command line.
                sigkill(procs[0])
                procs[0] = spawn(cluster, 0, data_dir)
                for i in range(5, 8):
                    await put_with_retry(client, f"k{i}", f"v{i}")
                    expected[f"k{i}"] = f"v{i}"

                # Now the acid test: kill -9 the ENTIRE cluster at once,
                # re-exec everyone, and demand every acked write back.
                for pid in range(3):
                    sigkill(procs[pid])
                for pid in range(3):
                    procs[pid] = spawn(cluster, pid, data_dir)
                for key, value in expected.items():
                    response = await get_with_retry(client, key)
                    assert response["found"], f"{key!r} lost across kill -9"
                    assert response["value"] == value
            finally:
                await client.close()

        try:
            run(scenario())
        finally:
            for proc in procs.values():
                if proc.poll() is None:
                    proc.terminate()
                    try:
                        proc.wait(timeout=10)
                    except subprocess.TimeoutExpired:
                        proc.kill()
                        proc.wait(timeout=10)

    def test_reexec_preserves_term_monotonicity(self, tmp_path):
        """A recovered node must come back in a term it has already seen
        (never a smaller one), or re-voting could elect two leaders for
        one term.  Verified via the status endpoint after re-exec."""
        cluster = ClusterConfig.localhost(3)
        data_dir = str(tmp_path)
        procs = {}

        async def scenario():
            client = AsyncKVClient(cluster, request_timeout=2.0)
            try:
                for pid in range(3):
                    procs[pid] = spawn(cluster, pid, data_dir)
                await put_with_retry(client, "seed", "1")

                async def term_of(pid, deadline=60.0):
                    stop = time.monotonic() + deadline
                    while True:
                        try:
                            status = await client.status_of(pid)
                            return status["term"]
                        except Exception:
                            if time.monotonic() > stop:
                                raise
                            await asyncio.sleep(0.2)

                before = await term_of(1)
                sigkill(procs[1])
                procs[1] = spawn(cluster, 1, data_dir)
                after = await term_of(1)
                assert after >= before, (
                    f"term went backwards across kill -9: {before} -> {after}"
                )
            finally:
                await client.close()

        try:
            run(scenario())
        finally:
            for proc in procs.values():
                if proc.poll() is None:
                    proc.terminate()
                    try:
                        proc.wait(timeout=10)
                    except subprocess.TimeoutExpired:
                        proc.kill()
                        proc.wait(timeout=10)
