"""Seeded crash-recovery property test — Raft Figure 2, proven by fire.

Each scenario drives a :class:`RaftStorage` through a random interleaving
of term bumps, votes, appends, conflict-suffix rewrites, compactions and
syncs, then pulls the power at that random point and cold-restarts.  The
recovered ``currentTerm`` / ``votedFor`` / log / snapshot must equal the
shadow model's state at the last durability barrier (an explicit sync or
a compaction checkpoint):

* a **clean** power failure loses exactly the un-fsynced buffer, so
  recovery must land *exactly* on the durable shadow;
* a **torn** power failure may persist any prefix of the buffered
  records plus a damaged final frame, so recovery must land on the
  durable shadow extended by some prefix of the pending operations —
  and nothing else.

Tier-1: in-process power failures are cheap, so this runs everywhere.
"""

import copy
import random

import pytest

from repro.algorithms.raft.log import Entry
from repro.storage import RaftStorage


def fresh_shadow():
    return {
        "term": 0,
        "voted_for": None,
        "snapshot_index": 0,
        "snapshot_term": 0,
        "entries": [],
        "machine": None,
    }


def apply_op(shadow, op):
    """Apply one logical operation to a shadow state (mutates it)."""
    kind = op[0]
    if kind == "term":
        _, term, voted_for = op
        shadow["term"] = term
        shadow["voted_for"] = voted_for
    elif kind == "append":
        _, index, entry = op
        position = index - shadow["snapshot_index"] - 1
        del shadow["entries"][position:]
        shadow["entries"].append(entry)
    elif kind == "compact":
        _, index, term, machine = op
        keep = index - shadow["snapshot_index"]
        shadow["entries"] = shadow["entries"][keep:]
        shadow["snapshot_index"] = index
        shadow["snapshot_term"] = term
        shadow["machine"] = machine
    else:  # pragma: no cover - generator bug
        raise AssertionError(op)


def state_of(storage):
    return {
        "term": storage.term,
        "voted_for": storage.voted_for,
        "snapshot_index": storage.snapshot_index,
        "snapshot_term": storage.snapshot_term,
        "entries": list(storage.entries),
        "machine": storage.machine_snapshot,
    }


def perform(storage, op):
    kind = op[0]
    if kind == "term":
        storage.record_term(op[1], op[2])
    elif kind == "append":
        storage.record_append(op[1], op[2])
    else:
        _, index, term, machine = op
        shadow_entries = storage.entries[index - storage.snapshot_index :]
        storage.record_compact(index, term, machine, shadow_entries)


def generate_op(rng, shadow):
    """Draw the next operation, valid against the current shadow state."""
    last_index = shadow["snapshot_index"] + len(shadow["entries"])
    choices = ["append"] * 6 + ["term"] * 2 + ["sync"] * 3
    if last_index > shadow["snapshot_index"]:
        choices += ["compact"]
    kind = rng.choice(choices)
    if kind == "append":
        if shadow["entries"] and rng.random() < 0.2:
            # Conflict-suffix rewrite at a random retained position.
            index = rng.randint(shadow["snapshot_index"] + 1, last_index)
            term = shadow["term"] + 1
        else:
            index = last_index + 1
            term = max(shadow["term"], 1)
        return ("append", index, Entry(term, f"cmd-{index}-{term}"))
    if kind == "term":
        return ("term", shadow["term"] + 1, rng.choice([None, 0, 1, 2]))
    if kind == "compact":
        index = rng.randint(shadow["snapshot_index"] + 1, last_index)
        position = index - shadow["snapshot_index"] - 1
        term = shadow["entries"][position].term
        return ("compact", index, term, ({"applied": index}, index))
    return ("sync",)


def run_scenario(seed, directory, *, torn):
    rng = random.Random(seed)
    storage = RaftStorage(str(directory))
    durable = fresh_shadow()  # opening checkpoint is itself synced
    latest = fresh_shadow()
    pending = []

    for _ in range(rng.randint(4, 40)):
        op = generate_op(rng, latest)
        if op[0] == "sync":
            storage.sync()
            durable = copy.deepcopy(latest)
            pending = []
            continue
        perform(storage, op)
        apply_op(latest, op)
        if op[0] == "compact":
            # Compaction checkpoints (and fsyncs) the full state.
            durable = copy.deepcopy(latest)
            pending = []
        else:
            pending.append(op)

    storage.crash(torn=torn)
    recovered = RaftStorage(str(directory))
    observed = state_of(recovered)
    recovered.close()

    if not torn:
        assert observed == durable, (
            f"seed {seed}: clean power failure must land exactly on the "
            f"durable barrier\n durable={durable}\nobserved={observed}"
        )
        return

    # Torn write: any prefix of the pending ops may have hit the platter.
    candidates = []
    shadow = copy.deepcopy(durable)
    candidates.append(copy.deepcopy(shadow))
    for op in pending:
        apply_op(shadow, op)
        candidates.append(copy.deepcopy(shadow))
    assert observed in candidates, (
        f"seed {seed}: torn recovery produced a state that was never "
        f"journalled\nobserved={observed}\ncandidates={candidates}"
    )


class TestCrashRecoveryProperty:
    @pytest.mark.parametrize("seed", range(30))
    def test_clean_power_failure(self, tmp_path, seed):
        run_scenario(seed, tmp_path, torn=False)

    @pytest.mark.parametrize("seed", range(30))
    def test_torn_power_failure(self, tmp_path, seed):
        run_scenario(seed + 1000, tmp_path, torn=True)

    @pytest.mark.parametrize("seed", range(10))
    def test_double_crash(self, tmp_path, seed):
        """Crash during recovery's own checkpoint must also be safe."""
        rng = random.Random(seed)
        storage = RaftStorage(str(tmp_path))
        for index in range(1, rng.randint(2, 10)):
            storage.record_append(index, Entry(1, f"c{index}"))
        storage.sync()
        expected = state_of(storage)
        storage.crash()
        # First recovery immediately loses power again, before syncing
        # anything new; its opening checkpoint is the only write.
        first = RaftStorage(str(tmp_path))
        first.crash(torn=bool(seed % 2))
        second = RaftStorage(str(tmp_path))
        assert state_of(second) == expected
        second.close()
