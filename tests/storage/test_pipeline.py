"""The asynchronous commit pipeline: off-loop fsync behind a watermark.

``sync_mode="pipelined"`` hands group fsync to a dedicated thread and
releases acknowledgements only when the *durability watermark* covers the
storage generation they depend on.  The contract under test:

* a callback registered via ``notify_durable`` fires only after the WAL
  bytes its generation depends on are really on the platter — so a power
  failure after the callback can never lose the write it acknowledged;
* callbacks release strictly in registration order (wire order survives
  the asynchronous barrier);
* the deliberate ``sync_policy="none"`` lost-ack bug still loses acked
  writes under the pipelined barrier (the chaos canary's precondition).

Every claim is proven the honest way: write, pull the power at the
interesting moment, cold-restart, compare.  Tier-1: in-process power
failures are cheap, so this runs everywhere.
"""

import random

import pytest

from repro.algorithms.raft.log import Entry
from repro.storage import RaftStorage


def recovered_commands(directory):
    """Cold-restart and return the recovered log's command list."""
    recovered = RaftStorage(str(directory))
    commands = [entry.command for entry in recovered.entries]
    recovered.close()
    return commands


class TestPipelinedBarrier:
    def test_acked_generation_survives_power_failure(self, tmp_path):
        storage = RaftStorage(str(tmp_path), sync_mode="pipelined")
        for index in range(1, 6):
            storage.record_append(index, Entry(1, f"cmd-{index}"))
        storage.begin_sync()
        assert storage.wait_durable(timeout=5.0), "fsync thread stalled"
        assert storage.watermark_lag == 0
        storage.crash()
        assert recovered_commands(tmp_path) == [f"cmd-{i}" for i in range(1, 6)]

    def test_unacked_generation_may_vanish(self, tmp_path):
        """Before the watermark advances nothing was promised: a crash
        right after ``begin_sync`` legally loses the in-flight batch."""
        storage = RaftStorage(str(tmp_path), sync_mode="pipelined")
        storage.record_append(1, Entry(1, "never-acked"))
        released = []
        storage.notify_durable(storage.generation, lambda: released.append(1))
        # Power fails with the fsync still queued: the callback must not
        # have fired, so no ack escaped and the loss is invisible.
        storage.crash()
        assert recovered_commands(tmp_path) in ([], ["never-acked"])
        storage2 = RaftStorage(str(tmp_path), sync_mode="pipelined")
        storage2.close()

    def test_callbacks_release_in_registration_order(self, tmp_path):
        storage = RaftStorage(str(tmp_path), sync_mode="pipelined")
        order = []
        for index in range(1, 8):
            storage.record_append(index, Entry(1, f"cmd-{index}"))
            storage.notify_durable(
                storage.generation, lambda i=index: order.append(i)
            )
            if index % 3 == 0:
                storage.begin_sync()
        storage.begin_sync()
        assert storage.wait_durable(timeout=5.0)
        assert order == list(range(1, 8))
        storage.close()

    def test_callback_at_durable_generation_fires_inline(self, tmp_path):
        storage = RaftStorage(str(tmp_path), sync_mode="pipelined")
        storage.record_append(1, Entry(1, "cmd"))
        storage.begin_sync()
        assert storage.wait_durable(timeout=5.0)
        fired = []
        storage.notify_durable(storage.generation, lambda: fired.append(1))
        assert fired == [1], "already-durable generation must not queue"
        storage.close()

    def test_inline_mode_is_synchronous(self, tmp_path):
        storage = RaftStorage(str(tmp_path), sync_mode="inline")
        storage.record_append(1, Entry(1, "cmd"))
        fired = []
        storage.begin_sync()
        storage.notify_durable(storage.generation, lambda: fired.append(1))
        assert fired == [1]
        assert storage.fsync_queue_depth == 0
        assert storage.watermark_lag == 0
        storage.close()

    def test_rejects_unknown_sync_mode(self, tmp_path):
        with pytest.raises(ValueError):
            RaftStorage(str(tmp_path), sync_mode="turbo")


class TestNeverAckUnsynced:
    """Seeded property: no interleaving of appends, barriers and a power
    failure ever releases an acknowledgement for state that recovery then
    fails to produce."""

    @pytest.mark.parametrize("seed", range(25))
    def test_crash_never_loses_an_acked_write(self, tmp_path, seed):
        rng = random.Random(seed)
        storage = RaftStorage(str(tmp_path), sync_mode="pipelined")
        acked = []

        def ack(upto):
            def _fire():
                acked.append(upto)
            return _fire

        index = 0
        for _ in range(rng.randint(3, 30)):
            roll = rng.random()
            if roll < 0.55 or index == 0:
                index += 1
                storage.record_append(index, Entry(1, f"cmd-{index}"))
                storage.notify_durable(storage.generation, ack(index))
            elif roll < 0.85:
                storage.begin_sync()
            else:
                # Give the fsync thread a chance to complete some jobs so
                # the crash point lands between watermark advances.  A
                # timeout is fine — un-begun generations never complete.
                storage.wait_durable(timeout=0.05)
        storage.crash(torn=bool(seed % 2))

        commands = recovered_commands(tmp_path)
        # Every acked prefix must be present in full after recovery.
        promised = max(acked, default=0)
        assert len(commands) >= promised, (
            f"seed {seed}: acked through index {promised} but recovery "
            f"produced only {commands}"
        )
        for i in range(promised):
            assert commands[i] == f"cmd-{i + 1}"


class TestLostAckPrecondition:
    def test_skipped_fsync_still_acks_and_loses(self, tmp_path):
        """The chaos canary's precondition: under ``sync_policy="none"``
        the pipelined watermark advances WITHOUT an fsync, the ack
        escapes, and the power failure forgets the write."""
        storage = RaftStorage(
            str(tmp_path), sync_policy="none", sync_mode="pipelined"
        )
        storage.record_append(1, Entry(1, "doomed"))
        fired = []
        storage.begin_sync()
        storage.notify_durable(storage.generation, lambda: fired.append(1))
        assert fired == [1], "the bug must still hand out the ack"
        storage.crash()
        assert recovered_commands(tmp_path) == [], (
            "sync_policy='none' must lose the acked write — otherwise the "
            "lost-ack canary can no longer prove the barrier matters"
        )
