"""Unit tests for the WAL and the Raft storage engine.

Every durability claim here is proven the only honest way: write, crash
(simulated power failure — un-synced state really disappears), reopen,
and compare against what was durable.  Tier-1: these run on every
``pytest`` invocation.
"""

import os

import pytest

from repro.algorithms.raft.log import Entry
from repro.sim.serialize import binary_dumps
from repro.storage import (
    DurableRaftNode,
    RaftStorage,
    StorageQuarantineError,
    Wal,
    WalCheckpoint,
    WalCorruptionError,
    WalEntry,
    WalError,
    WalTerm,
    encode_frame,
    flip_bit,
    read_snapshot,
    recover_wal,
    replay_records,
    scan_frames,
    tear_tail,
    wal_segments,
    write_snapshot,
)


class TestFrameCodec:
    def test_roundtrip_single(self):
        records, damage, reason = scan_frames(encode_frame(WalTerm(3, 1)))
        assert damage is None and reason is None
        assert records == [WalTerm(3, 1)]

    def test_roundtrip_run(self):
        run = [
            WalCheckpoint(2, None, 0, 0),
            WalEntry(1, 2, ("put", "k", "v")),
            WalTerm(3, 0),
        ]
        data = b"".join(encode_frame(r) for r in run)
        records, damage, _ = scan_frames(data)
        assert damage is None
        assert records == run

    def test_empty_is_clean(self):
        assert scan_frames(b"") == ([], None, None)

    def test_truncated_header_marks_damage(self):
        data = encode_frame(WalTerm(1, None))
        records, damage, reason = scan_frames(data + b"\x00\x00")
        assert records == [WalTerm(1, None)]
        assert damage == len(data)
        assert "header" in reason

    def test_crc_mismatch_marks_damage(self):
        data = bytearray(encode_frame(WalTerm(1, None)))
        data[-1] ^= 0xFF
        records, damage, reason = scan_frames(bytes(data))
        assert records == [] and damage == 0
        assert "checksum" in reason

    def test_implausible_length_marks_damage(self):
        records, damage, reason = scan_frames(b"\xff\xff\xff\xff" * 4)
        assert records == [] and damage == 0
        assert "length" in reason


class TestWalWriter:
    def test_append_requires_open_segment(self, tmp_path):
        wal = Wal(str(tmp_path))
        with pytest.raises(WalError):
            wal.append(WalTerm(1, None))

    def test_synced_records_survive_crash(self, tmp_path):
        wal = Wal(str(tmp_path))
        wal.checkpoint([WalCheckpoint(0, None, 0, 0)])
        wal.append(WalTerm(1, 2))
        wal.append(WalEntry(1, 1, "a"))
        wal.sync()
        wal.append(WalEntry(2, 1, "lost"))
        assert wal.dirty
        wal.crash()
        recovery = recover_wal(str(tmp_path))
        assert not recovery.torn_tail
        assert recovery.records == [
            WalCheckpoint(0, None, 0, 0),
            WalTerm(1, 2),
            WalEntry(1, 1, "a"),
        ]

    def test_torn_crash_leaves_recoverable_prefix(self, tmp_path):
        wal = Wal(str(tmp_path))
        wal.checkpoint([WalCheckpoint(0, None, 0, 0)])
        wal.append(WalEntry(1, 1, "a"))
        wal.sync()
        wal.append(WalEntry(2, 1, "torn"))
        wal.crash(torn=True)
        recovery = recover_wal(str(tmp_path))
        assert recovery.torn_tail
        assert recovery.records[-1] == WalEntry(1, 1, "a")

    def test_checkpoint_rotates_and_deletes_older_segments(self, tmp_path):
        wal = Wal(str(tmp_path))
        wal.checkpoint([WalCheckpoint(0, None, 0, 0)])
        wal.append(WalEntry(1, 1, "a"))
        wal.sync()
        wal.checkpoint([WalCheckpoint(1, 0, 0, 0), WalEntry(1, 1, "a")])
        segments = wal_segments(str(tmp_path))
        assert [os.path.basename(p) for p in segments] == ["wal-00000002.log"]
        assert wal.stats.rotations == 2

    def test_closed_wal_rejects_writes(self, tmp_path):
        wal = Wal(str(tmp_path))
        wal.checkpoint([WalCheckpoint(0, None, 0, 0)])
        wal.close()
        with pytest.raises(WalError):
            wal.append(WalTerm(1, None))
        with pytest.raises(WalError):
            wal.sync()

    def test_none_policy_loses_everything_on_crash(self, tmp_path):
        wal = Wal(str(tmp_path), sync_policy="none")
        wal.checkpoint([WalCheckpoint(0, None, 0, 0)])
        wal.append(WalEntry(1, 1, "acked"))
        wal.sync()  # claims durability but never fsyncs
        wal.crash()
        recovery = recover_wal(str(tmp_path))
        assert recovery.records == []

    def test_stats_count_group_syncs(self, tmp_path):
        wal = Wal(str(tmp_path))
        wal.checkpoint([WalCheckpoint(0, None, 0, 0)])
        for index in range(1, 11):
            wal.append(WalEntry(index, 1, "x"))
        wal.sync()
        wal.close()
        # 11 appends (checkpoint frame + 10 entries) over 2 syncs: the
        # whole batch shared one fsync barrier.
        assert wal.stats.appends == 11
        assert wal.stats.syncs == 2


class TestRecovery:
    def test_fresh_directory(self, tmp_path):
        recovery = recover_wal(str(tmp_path / "missing"))
        assert recovery.records == [] and recovery.next_segment == 1

    def test_torn_rotation_falls_back_to_previous_segment(self, tmp_path):
        wal = Wal(str(tmp_path))
        wal.checkpoint([WalCheckpoint(3, 1, 0, 0), WalEntry(1, 3, "a")])
        wal.close()
        # A rotation that died mid-checkpoint: garbage newest segment.
        with open(tmp_path / "wal-00000002.log", "wb") as fh:
            fh.write(b"\x00\x01garbage")
        recovery = recover_wal(str(tmp_path))
        assert recovery.records[0] == WalCheckpoint(3, 1, 0, 0)
        assert recovery.next_segment == 3

    def test_bad_checkpoint_in_sealed_segment_is_corruption(self, tmp_path):
        with open(tmp_path / "wal-00000001.log", "wb") as fh:
            fh.write(b"garbage that is not a frame")
        with open(tmp_path / "wal-00000002.log", "wb") as fh:
            fh.write(b"more garbage")
        with pytest.raises(WalCorruptionError):
            recover_wal(str(tmp_path))

    def test_damage_inside_sealed_segment_is_corruption(self, tmp_path):
        frames = [
            encode_frame(WalCheckpoint(1, None, 0, 0)),
            encode_frame(WalEntry(1, 1, "x" * 64)),
            encode_frame(WalEntry(2, 1, "y" * 64)),
        ]
        sealed = bytearray(b"".join(frames))
        sealed[len(frames[0]) + 12] ^= 0x01  # body of the middle frame
        with open(tmp_path / "wal-00000001.log", "wb") as fh:
            fh.write(bytes(sealed))
        with open(tmp_path / "wal-00000002.log", "wb") as fh:
            fh.write(b"torn rotation tail")
        with pytest.raises(WalCorruptionError):
            recover_wal(str(tmp_path))

    def test_replay_applies_truncate_then_append(self):
        state = replay_records(
            [
                WalCheckpoint(1, 0, 0, 0),
                WalEntry(1, 1, "a"),
                WalEntry(2, 1, "b"),
                WalTerm(2, None),
                WalEntry(2, 2, "b'"),  # conflict-suffix rewrite
            ]
        )
        assert state.term == 2 and state.voted_for is None
        assert [e.command for e in state.entries] == ["a", "b'"]
        assert state.entries[1].term == 2

    def test_replay_rejects_gaps(self):
        with pytest.raises(WalCorruptionError):
            replay_records([WalCheckpoint(0, None, 0, 0), WalEntry(5, 1, "x")])


class TestSnapshotFiles:
    def test_roundtrip(self, tmp_path):
        write_snapshot(str(tmp_path), 7, ({"k": "v"}, 7))
        assert read_snapshot(str(tmp_path), 7) == ({"k": "v"}, 7)

    def test_missing_raises(self, tmp_path):
        with pytest.raises(WalCorruptionError):
            read_snapshot(str(tmp_path), 9)

    def test_damaged_raises(self, tmp_path):
        path = write_snapshot(str(tmp_path), 7, ({"k": "v"}, 7))
        with open(path, "r+b") as fh:
            fh.seek(10)
            fh.write(b"\xff")
        with pytest.raises(WalCorruptionError):
            read_snapshot(str(tmp_path), 7)


class TestRaftStorage:
    def test_cold_start_is_empty(self, tmp_path):
        storage = RaftStorage(str(tmp_path))
        assert storage.term == 0 and storage.voted_for is None
        assert storage.entries == [] and storage.snapshot_index == 0
        assert not storage.quarantined

    def test_crash_recovery_preserves_synced_state(self, tmp_path):
        storage = RaftStorage(str(tmp_path))
        storage.record_term(2, 1)
        storage.record_append(1, Entry(2, "a"))
        storage.record_append(2, Entry(2, "b"))
        storage.sync()
        storage.record_append(3, Entry(2, "unsynced"))
        storage.crash()

        recovered = RaftStorage(str(tmp_path))
        assert recovered.term == 2 and recovered.voted_for == 1
        assert [e.command for e in recovered.entries] == ["a", "b"]

    def test_compaction_persists_snapshot_and_prunes(self, tmp_path):
        storage = RaftStorage(str(tmp_path))
        for index in range(1, 6):
            storage.record_append(index, Entry(1, f"c{index}"))
        storage.record_compact(3, 1, ({"state": 3}, 3), [Entry(1, "c4"), Entry(1, "c5")])
        storage.sync()
        storage.crash()

        recovered = RaftStorage(str(tmp_path))
        assert recovered.snapshot_index == 3 and recovered.snapshot_term == 1
        assert recovered.machine_snapshot == ({"state": 3}, 3)
        assert [e.command for e in recovered.entries] == ["c4", "c5"]

    def test_segment_overflow_rotates_at_sync(self, tmp_path):
        storage = RaftStorage(str(tmp_path), segment_bytes=512)
        for index in range(1, 20):
            storage.record_append(index, Entry(1, "x" * 64))
            storage.sync()
        assert storage.stats.rotations > 1
        assert len(wal_segments(str(tmp_path))) == 1  # old ones GC'd
        recovered = RaftStorage(str(tmp_path))
        assert len(recovered.entries) == 19

    def test_quarantine_on_corruption(self, tmp_path):
        frames = [
            encode_frame(WalCheckpoint(1, None, 0, 0)),
            encode_frame(WalEntry(1, 1, "x" * 64)),
            encode_frame(WalEntry(2, 1, "y" * 64)),
        ]
        sealed = bytearray(b"".join(frames))
        sealed[len(frames[0]) + 12] ^= 0x01
        with open(tmp_path / "wal-00000001.log", "wb") as fh:
            fh.write(bytes(sealed))
        with open(tmp_path / "wal-00000002.log", "wb") as fh:
            fh.write(b"torn rotation tail")
        storage = RaftStorage(str(tmp_path))
        assert storage.quarantined
        assert storage.term == 0 and storage.entries == []
        quarantined = [
            name for name in os.listdir(tmp_path) if name.startswith("corrupt-")
        ]
        assert len(quarantined) == 1
        # The node is operational again and persists as usual.
        storage.record_term(1, 0)
        storage.sync()
        storage.crash()
        assert RaftStorage(str(tmp_path)).term == 1

    def test_no_rejoin_cold_start_and_recovery_unaffected(self, tmp_path):
        storage = RaftStorage(str(tmp_path), no_rejoin=True)
        storage.record_term(3, 1)
        storage.record_append(1, Entry(3, "a"))
        storage.sync()
        storage.crash()
        recovered = RaftStorage(str(tmp_path), no_rejoin=True)
        assert recovered.term == 3
        assert [e.command for e in recovered.entries] == ["a"]

    def test_no_rejoin_tolerates_torn_tail(self, tmp_path):
        # A torn tail is a crash signature, not a failing disk: strict
        # mode must still recover the valid prefix and start.
        storage = RaftStorage(str(tmp_path))
        for index in range(1, 6):
            storage.record_append(index, Entry(1, f"v{index}" * 10))
        storage.sync()
        storage.close()
        assert tear_tail(str(tmp_path)) is not None
        recovered = RaftStorage(str(tmp_path), no_rejoin=True)
        assert recovered.torn_tail
        assert len(recovered.entries) == 4

    def _corrupt_sealed_segment(self, tmp_path):
        frames = [
            encode_frame(WalCheckpoint(1, None, 0, 0)),
            encode_frame(WalEntry(1, 1, "x" * 64)),
        ]
        sealed = bytearray(b"".join(frames))
        sealed[len(frames[0]) + 12] ^= 0x01
        with open(tmp_path / "wal-00000001.log", "wb") as fh:
            fh.write(bytes(sealed))
        with open(tmp_path / "wal-00000002.log", "wb") as fh:
            fh.write(b"torn rotation tail")

    def test_no_rejoin_refuses_corrupt_segment(self, tmp_path):
        self._corrupt_sealed_segment(tmp_path)
        before = sorted(os.listdir(tmp_path))
        with pytest.raises(StorageQuarantineError):
            RaftStorage(str(tmp_path), no_rejoin=True)
        # Nothing moved aside: the evidence stays put for the operator.
        assert sorted(os.listdir(tmp_path)) == before
        assert not any(name.startswith("corrupt-") for name in before)
        # Default mode on the same directory still self-heals.
        storage = RaftStorage(str(tmp_path))
        assert storage.quarantined

    def test_no_rejoin_refuses_missing_snapshot(self, tmp_path):
        storage = RaftStorage(str(tmp_path))
        for index in range(1, 4):
            storage.record_append(index, Entry(1, f"c{index}"))
        storage.record_compact(2, 1, ({"k": 2}, 2), [Entry(1, "c3")])
        storage.sync()
        storage.close()
        os.unlink(tmp_path / f"snap-{2:016d}.bin")
        with pytest.raises(StorageQuarantineError):
            RaftStorage(str(tmp_path), no_rejoin=True)

    def test_term_journalling_deduplicates(self, tmp_path):
        storage = RaftStorage(str(tmp_path))
        appends_before = storage.stats.appends
        storage.record_term(1, None)
        storage.record_term(1, None)  # repeat assignment, no new record
        storage.record_term(1, 2)
        assert storage.stats.appends == appends_before + 2


class TestFaultHelpers:
    def _stored(self, tmp_path):
        storage = RaftStorage(str(tmp_path))
        for index in range(1, 6):
            storage.record_append(index, Entry(1, f"v{index}" * 10))
        storage.sync()
        storage.close()

    def test_tear_tail_truncates_last_record(self, tmp_path):
        self._stored(tmp_path)
        assert tear_tail(str(tmp_path)) is not None
        recovered = RaftStorage(str(tmp_path))
        assert recovered.torn_tail
        assert len(recovered.entries) == 4

    def test_flip_bit_damages_without_wrong_records(self, tmp_path):
        self._stored(tmp_path)
        assert flip_bit(str(tmp_path)) is not None
        recovered = RaftStorage(str(tmp_path))
        # Damage mid-segment: recovery truncated from it (or, had it hit
        # the checkpoint, started empty) — but never invented a record.
        commands = [e.command for e in recovered.entries]
        assert commands == [f"v{i}" * 10 for i in range(1, len(commands) + 1)]
        assert len(commands) < 5


class TestDurableRaftNode:
    def test_journal_and_recover_figure2_state(self, tmp_path):
        storage = RaftStorage(str(tmp_path))
        node = DurableRaftNode(storage=storage)
        node.current_term = 4
        node.voted_for = 2
        node.log.append_new(Entry(4, "alpha"))
        node.log.append_new(Entry(4, "beta"))
        assert node.log.try_append(2, 4, [Entry(5, "beta'")])
        storage.sync()
        storage.crash()

        recovered = RaftStorage(str(tmp_path))
        revived = DurableRaftNode(storage=recovered)
        assert revived.current_term == 4
        assert revived.voted_for == 2
        assert revived.log.last_index == 3
        assert [e.command for e in revived.log.as_list()] == [
            "alpha", "beta", "beta'",
        ]
        assert revived.log.term_at(3) == 5

    def test_compaction_journals_machine_snapshot(self, tmp_path):
        storage = RaftStorage(str(tmp_path))
        node = DurableRaftNode(storage=storage)
        node.current_term = 1
        for command in ("a", "b", "c"):
            node.log.append_new(Entry(1, command))
        node.machine_snapshot = ({"applied": "ab"}, 2)
        node.log.compact_to(2)
        storage.sync()
        storage.crash()

        recovered = RaftStorage(str(tmp_path))
        revived = DurableRaftNode(storage=recovered)
        assert revived.log.snapshot_index == 2
        assert revived.machine_snapshot == ({"applied": "ab"}, 2)
        assert [e.command for e in revived.log.as_list()] == ["c"]

    def test_unsynced_changes_die_with_the_power(self, tmp_path):
        storage = RaftStorage(str(tmp_path))
        node = DurableRaftNode(storage=storage)
        node.current_term = 1
        node.log.append_new(Entry(1, "durable"))
        storage.sync()
        node.current_term = 9  # never synced
        node.log.append_new(Entry(9, "gone"))
        storage.crash()

        revived = DurableRaftNode(storage=RaftStorage(str(tmp_path)))
        assert revived.current_term == 1
        assert [e.command for e in revived.log.as_list()] == ["durable"]
