"""Incremental snapshots: delta chains, chain-aware GC, fuzzed recovery.

Compaction of a dict machine writes a ``snapd-`` delta (changed/removed
keys against the previous snapshot) instead of rewriting the full image,
up to ``snapshot_chain_limit`` links; recovery replays base + deltas.
The properties under test:

* ``load_snapshot`` reconstructs exactly the state the writer saw, for
  any mix of full bases and deltas;
* GC is chain-aware: every link back to the full base stays on disk for
  as long as a durable checkpoint references the chain head — including
  across a crash mid-compaction (the regression this file pins down);
* a damaged, cyclic or over-deep chain is a *corruption*, handled by the
  same quarantine/no-rejoin policy as a damaged WAL segment.

Tier-1: all scenarios are tmp-dir local and fast.
"""

import os

import pytest

from repro.algorithms.raft.log import Entry
from repro.storage import (
    RaftStorage,
    StorageQuarantineError,
    WalCorruptionError,
    load_snapshot,
    read_snapshot_delta,
    snapshot_chain_indexes,
    write_snapshot,
    write_snapshot_delta,
)
from repro.storage.wal import delta_files, delta_path, snapshot_files


def compact_to(storage, index, machine):
    """Append up to ``index`` and compact with ``machine`` as the image."""
    for at in range(storage.snapshot_index + len(storage.entries) + 1, index + 1):
        storage.record_append(at, Entry(1, f"cmd-{at}"))
    storage.record_compact(index, 1, machine, [])


class TestDeltaFormat:
    def test_chain_roundtrip(self, tmp_path):
        directory = str(tmp_path)
        write_snapshot(directory, 10, {"a": 1, "b": 2})
        write_snapshot_delta(directory, 20, 10, {"b": 3, "c": 4}, ())
        write_snapshot_delta(directory, 30, 20, {"d": 5}, ("a",))
        assert snapshot_chain_indexes(directory, 30) == [30, 20, 10]
        assert load_snapshot(directory, 30) == {"b": 3, "c": 4, "d": 5}
        assert load_snapshot(directory, 20) == {"a": 1, "b": 3, "c": 4}
        assert load_snapshot(directory, 10) == {"a": 1, "b": 2}

    def test_missing_link_is_corruption(self, tmp_path):
        directory = str(tmp_path)
        write_snapshot_delta(directory, 20, 10, {"x": 1}, ())
        with pytest.raises(WalCorruptionError):
            load_snapshot(directory, 20)  # base at 10 never written

    def test_damaged_delta_is_corruption(self, tmp_path):
        directory = str(tmp_path)
        write_snapshot(directory, 10, {"a": 1})
        path = write_snapshot_delta(directory, 20, 10, {"b": 2}, ())
        blob = bytearray(open(path, "rb").read())
        blob[len(blob) // 2] ^= 0x40
        with open(path, "wb") as handle:
            handle.write(blob)
        with pytest.raises(WalCorruptionError):
            read_snapshot_delta(directory, 20)
        with pytest.raises(WalCorruptionError):
            load_snapshot(directory, 20)

    def test_non_decreasing_prev_index_is_corruption(self, tmp_path):
        directory = str(tmp_path)
        # A lying disk could produce a self-link; torn writes cannot.
        write_snapshot_delta(directory, 20, 20, {"x": 1}, ())
        with pytest.raises(WalCorruptionError):
            snapshot_chain_indexes(directory, 20)

    def test_cycle_is_corruption(self, tmp_path):
        directory = str(tmp_path)
        write_snapshot_delta(directory, 30, 20, {"x": 1}, ())
        write_snapshot_delta(directory, 20, 10, {"y": 2}, ())
        os.replace(delta_path(directory, 30), delta_path(directory, 10))
        # 30 is gone; 20 -> 10 -> 20 would loop forever without the
        # strictly-decreasing check.
        with pytest.raises(WalCorruptionError):
            snapshot_chain_indexes(directory, 20)


class TestChainedCompaction:
    def test_deltas_then_full_base_reset(self, tmp_path):
        storage = RaftStorage(str(tmp_path), snapshot_chain_limit=3)
        machine = {}
        for step in range(1, 6):
            machine = dict(machine, **{f"k{step}": step})
            compact_to(storage, step * 10, machine)
        # Chain limit 3: full@10, delta@20, delta@30, full@40, delta@50.
        assert storage.delta_compactions == 3
        assert storage.compactions == 5
        assert snapshot_chain_indexes(str(tmp_path), 50) == [50, 40]
        storage.crash()
        recovered = RaftStorage(str(tmp_path), snapshot_chain_limit=3)
        assert recovered.snapshot_index == 50
        assert recovered.machine_snapshot == machine
        recovered.close()

    def test_removed_keys_replay(self, tmp_path):
        storage = RaftStorage(str(tmp_path))
        compact_to(storage, 10, {"keep": 1, "drop": 2})
        compact_to(storage, 20, {"keep": 1, "new": 3})
        assert read_snapshot_delta(str(tmp_path), 20).removed == ("drop",)
        storage.crash()
        recovered = RaftStorage(str(tmp_path))
        assert recovered.machine_snapshot == {"keep": 1, "new": 3}
        recovered.close()

    def test_gc_keeps_whole_live_chain(self, tmp_path):
        storage = RaftStorage(str(tmp_path), snapshot_chain_limit=8)
        machine = {}
        for step in range(1, 5):
            machine = dict(machine, **{f"k{step}": step})
            compact_to(storage, step * 10, machine)
        survivors = {
            os.path.basename(p)
            for p in snapshot_files(str(tmp_path)) + delta_files(str(tmp_path))
        }
        # The base at 10 is still referenced by the 40 -> 30 -> 20 -> 10
        # chain and must survive every later compaction's GC.
        assert survivors == {
            "snap-0000000000000010.bin",
            "snapd-0000000000000020.bin",
            "snapd-0000000000000030.bin",
            "snapd-0000000000000040.bin",
        }
        storage.close()

    def test_gc_unlinks_dead_chain_after_full_reset(self, tmp_path):
        storage = RaftStorage(str(tmp_path), snapshot_chain_limit=2)
        machine = {}
        for step in range(1, 5):
            machine = dict(machine, **{f"k{step}": step})
            compact_to(storage, step * 10, machine)
        survivors = {
            os.path.basename(p)
            for p in snapshot_files(str(tmp_path)) + delta_files(str(tmp_path))
        }
        # full@10, delta@20, full@30 (limit reached), delta@40: the GC
        # after the full reset must have dropped the 20 -> 10 chain.
        assert survivors == {
            "snap-0000000000000030.bin",
            "snapd-0000000000000040.bin",
        }
        storage.close()


class TestCrashMidCompaction:
    def test_orphan_delta_never_unlinks_referenced_base(self, tmp_path):
        """Regression: compaction crashes after writing the delta file
        but before the checkpoint that references it.  The old chain is
        still the durable truth — recovery must restore it, and its GC
        must drop only the orphan, never the still-referenced base."""
        storage = RaftStorage(str(tmp_path))
        compact_to(storage, 10, {"a": 1})
        compact_to(storage, 20, {"a": 1, "b": 2})
        # The crash point: a delta at 30 exists, no checkpoint names it.
        write_snapshot_delta(str(tmp_path), 30, 20, {"c": 3}, ())
        storage.crash()
        recovered = RaftStorage(str(tmp_path))
        assert recovered.snapshot_index == 20
        assert recovered.machine_snapshot == {"a": 1, "b": 2}
        survivors = {
            os.path.basename(p)
            for p in snapshot_files(str(tmp_path)) + delta_files(str(tmp_path))
        }
        assert "snap-0000000000000010.bin" in survivors, (
            "GC unlinked the base the live 20 -> 10 chain still needs"
        )
        assert "snapd-0000000000000030.bin" not in survivors, (
            "recovery's checkpoint GC must clear the orphaned delta"
        )
        # And the recovered chain still loads.
        assert load_snapshot(str(tmp_path), 20) == {"a": 1, "b": 2}
        recovered.close()


class TestQuarantinePolicy:
    def _damage_delta(self, directory):
        storage = RaftStorage(directory)
        compact_to(storage, 10, {"a": 1})
        compact_to(storage, 20, {"a": 1, "b": 2})
        storage.crash()
        path = delta_path(directory, 20)
        blob = bytearray(open(path, "rb").read())
        blob[-1] ^= 0xFF
        with open(path, "wb") as handle:
            handle.write(blob)

    def test_damaged_chain_quarantines_and_rejoins_empty(self, tmp_path):
        self._damage_delta(str(tmp_path))
        recovered = RaftStorage(str(tmp_path))
        assert recovered.quarantined
        assert recovered.snapshot_index == 0
        assert recovered.entries == []
        recovered.close()

    def test_damaged_chain_respects_no_rejoin(self, tmp_path):
        self._damage_delta(str(tmp_path))
        with pytest.raises(StorageQuarantineError):
            RaftStorage(str(tmp_path), no_rejoin=True)
