"""The public API surface: everything advertised must import and work."""

import importlib

import pytest

import repro


def test_version():
    assert repro.__version__ == "1.0.0"


def test_all_names_resolve():
    for name in repro.__all__:
        if name == "__version__":
            continue
        assert hasattr(repro, name), f"repro.__all__ advertises missing {name}"


SUBMODULES = [
    "repro.core",
    "repro.core.confidence",
    "repro.core.objects",
    "repro.core.template",
    "repro.core.composition",
    "repro.core.properties",
    "repro.sim",
    "repro.sim.async_runtime",
    "repro.sim.sync_runtime",
    "repro.sim.network",
    "repro.sim.failures",
    "repro.sim.trace",
    "repro.memory",
    "repro.memory.adopt_commit",
    "repro.memory.conciliator",
    "repro.memory.composition",
    "repro.memory.consensus",
    "repro.algorithms.ben_or",
    "repro.algorithms.phase_king",
    "repro.algorithms.phase_queen",
    "repro.algorithms.raft",
    "repro.algorithms.paxos",
    "repro.algorithms.chandra_toueg",
    "repro.algorithms.decentralized_raft",
    "repro.algorithms.shared_coin",
    "repro.analysis",
    "repro.analysis.metrics",
    "repro.analysis.experiments",
    "repro.analysis.workloads",
    "repro.analysis.report",
]


@pytest.mark.parametrize("module_name", SUBMODULES)
def test_submodule_imports(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} lacks a module docstring"


@pytest.mark.parametrize("module_name", SUBMODULES)
def test_submodule_all_entries_exist(module_name):
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{module_name}.__all__ lists missing {name}"


def test_public_classes_have_docstrings():
    import inspect

    missing = []
    for name in repro.__all__:
        obj = getattr(repro, name, None)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if not (obj.__doc__ or "").strip():
                missing.append(name)
    assert not missing, f"public items without docstrings: {missing}"


def test_quickstart_snippet_from_readme():
    from repro import AsyncRuntime, ben_or_template_consensus

    processes = [ben_or_template_consensus() for _ in range(5)]
    runtime = AsyncRuntime(processes, init_values=[0, 1, 0, 1, 1], t=2, seed=7)
    result = runtime.run()
    assert result.decided_value() in (0, 1)
