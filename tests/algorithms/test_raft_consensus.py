"""End-to-end tests for Raft consensus (Lemma 6) and its VAC view (Lemma 7)."""

import pytest

from repro.algorithms.raft import (
    LEADER,
    build_raft_cluster,
    check_raft_vac,
    run_raft_consensus,
)
from repro.core.properties import (
    check_agreement,
    check_termination,
    check_validity,
)
from repro.sim.async_runtime import AsyncRuntime
from repro.sim.failures import CrashPlan
from repro.sim.network import NetworkConfig, Partition, UniformDelay


class TestBasicConsensus:
    @pytest.mark.parametrize("seed", range(8))
    def test_agreement_validity_termination(self, seed):
        inits = [10, 20, 30, 40, 50]
        result = run_raft_consensus(inits, seed=seed)
        check_agreement(result.decisions)
        check_validity(result.decisions, inits)
        check_termination(result.decisions, range(5))

    @pytest.mark.parametrize("n", [1, 2, 3, 5, 7, 9])
    def test_cluster_sizes(self, n):
        inits = list(range(n))
        result = run_raft_consensus(inits, seed=3)
        check_agreement(result.decisions)
        check_termination(result.decisions, range(n))

    @pytest.mark.parametrize("seed", range(5))
    def test_single_leader_per_term(self, seed):
        result = run_raft_consensus([1, 2, 3, 4, 5], seed=seed)
        leaders_by_term = {}
        for _pid, _time, (term, leader) in result.trace.annotations("leader"):
            leaders_by_term.setdefault(term, set()).add(leader)
        assert all(len(leaders) == 1 for leaders in leaders_by_term.values())

    @pytest.mark.parametrize("seed", range(8))
    def test_vac_view_coherent_per_term(self, seed):
        result = run_raft_consensus([1, 2, 3, 4, 5], seed=seed)
        assert check_raft_vac(result.trace) >= 1

    def test_decided_value_is_the_first_leaders_value(self):
        result = run_raft_consensus([1, 2, 3], seed=0)
        leaders = [l for _p, _t, (_term, l) in result.trace.annotations("leader")]
        first_leader = leaders[0]
        assert result.decided_value() == [1, 2, 3][first_leader]


class TestUnderFailures:
    @pytest.mark.parametrize("seed", range(5))
    def test_leader_crash_triggers_reelection(self, seed):
        # Crash whoever could be the first leader early; a minority crash
        # must never block progress.
        result = run_raft_consensus(
            [1, 2, 3, 4, 5],
            seed=seed,
            crash_plans=[CrashPlan(seed % 5, at_time=14.0)],
        )
        live = [p for p in range(5) if p != seed % 5]
        check_agreement(result.decisions)
        check_termination(result.decisions, live)

    @pytest.mark.parametrize("seed", range(5))
    def test_two_crashes_of_five(self, seed):
        result = run_raft_consensus(
            [1, 2, 3, 4, 5],
            seed=seed,
            crash_plans=[
                CrashPlan(0, at_time=12.0),
                CrashPlan(1, at_time=18.0),
            ],
        )
        check_agreement(result.decisions)
        check_termination(result.decisions, [2, 3, 4])

    @pytest.mark.parametrize("seed", range(4))
    def test_crash_restart_rejoins_and_agrees(self, seed):
        result = run_raft_consensus(
            [1, 2, 3, 4, 5],
            seed=seed,
            crash_plans=[CrashPlan(2, at_time=8.0, restart_at=40.0)],
            max_time=400.0,
        )
        check_agreement(result.decisions)
        check_raft_vac(result.trace)

    @pytest.mark.parametrize("seed", range(4))
    def test_partition_heals_and_agrees(self, seed):
        network = NetworkConfig(
            delay_model=UniformDelay(0.5, 1.5),
            partitions=[Partition(5.0, 80.0, [[0, 1], [2, 3, 4]])],
        )
        result = run_raft_consensus([1, 2, 3, 4, 5], seed=seed, network=network)
        check_agreement(result.decisions)
        check_termination(result.decisions, range(5))

    @pytest.mark.parametrize("seed", range(4))
    def test_lossy_network(self, seed):
        network = NetworkConfig(delay_model=UniformDelay(0.5, 1.5), drop_rate=0.2)
        result = run_raft_consensus([1, 2, 3], seed=seed, network=network)
        check_agreement(result.decisions)
        check_termination(result.decisions, range(3))

    def test_minority_partition_cannot_decide_alone(self):
        # Permanently cut {0, 1} off: only the majority side decides.
        network = NetworkConfig(
            delay_model=UniformDelay(0.5, 1.5),
            partitions=[Partition(0.0, 10_000.0, [[0, 1], [2, 3, 4]])],
        )
        result = run_raft_consensus(
            [1, 2, 3, 4, 5],
            seed=0,
            network=network,
            max_time=300.0,
        )
        majority_decisions = {p: v for p, v in result.decisions.items() if p in (2, 3, 4)}
        minority_decisions = {p: v for p, v in result.decisions.items() if p in (0, 1)}
        assert len(majority_decisions) >= 1
        assert minority_decisions == {}
        check_agreement(result.decisions)


class TestLogSafetyProperties:
    @pytest.mark.parametrize("seed", range(5))
    def test_leader_completeness_and_log_matching(self, seed):
        """After a chaotic run, all node logs must agree on every index two
        nodes share — the Log Matching property — and the decided entry must
        appear in every live node's log prefix."""
        nodes = build_raft_cluster(5)
        runtime = AsyncRuntime(
            nodes,
            init_values=[1, 2, 3, 4, 5],
            t=2,
            network=NetworkConfig(delay_model=UniformDelay(0.5, 1.5)),
            seed=seed,
            crash_plans=[CrashPlan(0, at_time=13.0, restart_at=35.0)],
            max_time=400.0,
        )
        result = runtime.run()
        check_agreement(result.decisions)
        logs = [node.log for node in nodes]
        for a in range(5):
            for b in range(a + 1, 5):
                shared = min(logs[a].last_index, logs[b].last_index)
                for index in range(1, shared + 1):
                    if logs[a].term_at(index) == logs[b].term_at(index):
                        assert (
                            logs[a].entry_at(index) == logs[b].entry_at(index)
                        ), f"log matching violated at {index} between {a},{b}"

    @pytest.mark.parametrize("seed", range(5))
    def test_state_machine_safety(self, seed):
        """No two nodes apply different commands at the same index."""
        nodes = build_raft_cluster(5)
        runtime = AsyncRuntime(
            nodes,
            init_values=[1, 2, 3, 4, 5],
            t=2,
            network=NetworkConfig(delay_model=UniformDelay(0.5, 1.5)),
            seed=seed,
            max_time=400.0,
        )
        result = runtime.run()
        applied = {}
        for pid, _time, (index, term, command) in result.trace.annotations("applied"):
            key = index
            if key in applied:
                assert applied[key] == (term, command), (
                    f"state machine safety violated at index {index}"
                )
            else:
                applied[key] = (term, command)


class TestTimingProperty:
    def test_slow_network_vs_timeouts_still_terminates(self):
        # Violate the comfortable margin a bit: latencies near the election
        # timeout cause churn but must not break safety.
        network = NetworkConfig(delay_model=UniformDelay(2.0, 6.0))
        result = run_raft_consensus(
            [1, 2, 3], seed=1, network=network, election_timeout=(10.0, 20.0),
            max_time=3000.0,
        )
        check_agreement(result.decisions)

    def test_node_parameter_validation(self):
        from repro.algorithms.raft import RaftNode

        with pytest.raises(ValueError):
            RaftNode(election_timeout=(0.0, 1.0))
        with pytest.raises(ValueError):
            RaftNode(election_timeout=(5.0, 1.0))
        with pytest.raises(ValueError):
            RaftNode(heartbeat_interval=0.0)
