"""Tests for the asynchronous AC + conciliator consensus (Algorithm 2)."""

import pytest

from repro.algorithms.shared_coin import (
    GuardedCoinConciliator,
    shared_coin_ac_consensus,
)
from repro.core.confidence import ADOPT
from repro.core.properties import (
    check_agreement,
    check_all_rounds,
    check_termination,
    check_validity,
)
from repro.sim.async_runtime import AsyncRuntime
from repro.sim.failures import CrashPlan
from repro.sim.ops import Annotate
from repro.sim.process import Process


def run_sc(init_values, t, seed=0, crash_plans=()):
    n = len(init_values)
    processes = [shared_coin_ac_consensus() for _ in range(n)]
    runtime = AsyncRuntime(
        processes,
        init_values=init_values,
        t=t,
        seed=seed,
        crash_plans=crash_plans,
        max_time=100_000.0,
    )
    return runtime.run()


class TestConsensus:
    @pytest.mark.parametrize("seed", range(10))
    def test_agreement_validity_termination(self, seed):
        inits = [0, 1, 0, 1, 1]
        result = run_sc(inits, t=2, seed=seed)
        check_agreement(result.decisions)
        check_validity(result.decisions, inits)
        check_termination(result.decisions, range(5))

    def test_unanimous_decides_in_one_round(self):
        from repro.analysis.metrics import decision_rounds

        result = run_sc([1] * 5, t=2, seed=0)
        assert result.decided_value() == 1
        assert all(m == 1 for m in decision_rounds(result.trace, "ac").values())

    @pytest.mark.parametrize("seed", range(5))
    def test_crashes_tolerated(self, seed):
        inits = [0, 1, 0, 1, 1]
        result = run_sc(
            inits, t=2, seed=seed, crash_plans=[CrashPlan(4, at_time=2.0)]
        )
        check_agreement(result.decisions)
        check_termination(result.decisions, range(4))

    @pytest.mark.parametrize("seed", range(10))
    def test_every_round_is_ac_coherent(self, seed):
        result = run_sc([0, 1, 0, 1, 1], t=2, seed=seed)
        check_all_rounds(result.trace, "ac")

    @pytest.mark.parametrize("seed", range(10))
    def test_no_vacillate_ever_surfaces(self, seed):
        from repro.core.confidence import VACILLATE
        from repro.core.properties import outcomes_by_round

        result = run_sc([0, 1, 0, 1, 1], t=2, seed=seed)
        for per_round in outcomes_by_round(result.trace, "ac").values():
            assert all(c is not VACILLATE for c, _v in per_round.values())


class OneShotConciliator(Process):
    def __init__(self, conciliator, round_no=1):
        self.conciliator = conciliator
        self.round_no = round_no

    def run(self, api):
        value = yield from self.conciliator.invoke(
            api, ADOPT, api.init_value, self.round_no
        )
        yield Annotate("outcome", value)


def run_conciliator(init_values, t, seed=0):
    n = len(init_values)
    conciliator = GuardedCoinConciliator()
    processes = [OneShotConciliator(conciliator) for _ in range(n)]
    runtime = AsyncRuntime(
        processes, init_values=init_values, t=t, seed=seed,
        stop_when="all_halted", max_time=1_000.0,
    )
    result = runtime.run()
    return {pid: v for pid, _t, v in result.trace.annotations("outcome")}


class TestGuardedConciliator:
    def test_unanimous_inputs_take_the_guard(self):
        for seed in range(10):
            outcomes = run_conciliator([1] * 5, t=2, seed=seed)
            assert set(outcomes.values()) == {1}

    @pytest.mark.parametrize("seed", range(20))
    def test_validity_on_mixed_inputs(self, seed):
        inits = [0, 1, 0, 1]
        outcomes = run_conciliator(inits, t=1, seed=seed)
        assert all(v in (0, 1) for v in outcomes.values())

    def test_probabilistic_agreement_frequency(self):
        agreements = sum(
            len(set(run_conciliator([0, 1, 0, 1], t=1, seed=s).values())) == 1
            for s in range(40)
        )
        # 4 coins agree with prob 1/8 plus guard-path luck; require > 0.
        assert agreements > 0

    def test_domain_validation(self):
        with pytest.raises(ValueError):
            GuardedCoinConciliator(())
