"""Unit tests for the Raft log (consistency check, conflict deletion)."""

import pytest

from repro.algorithms.raft.log import Entry, RaftLog


def log_of(*terms):
    return RaftLog([Entry(term, f"cmd{i}") for i, term in enumerate(terms, 1)])


class TestInspection:
    def test_empty_log(self):
        log = RaftLog()
        assert log.last_index == 0
        assert log.last_term == 0
        assert log.term_at(0) == 0
        assert len(log) == 0
        assert log.as_list() == []

    def test_indexing_is_one_based(self):
        log = log_of(1, 1, 2)
        assert log.last_index == 3
        assert log.last_term == 2
        assert log.term_at(1) == 1
        assert log.term_at(3) == 2
        assert log.entry_at(2).command == "cmd2"

    def test_entry_at_out_of_range(self):
        log = log_of(1)
        with pytest.raises(IndexError):
            log.entry_at(0)
        with pytest.raises(IndexError):
            log.entry_at(2)

    def test_entries_from(self):
        log = log_of(1, 2, 3)
        assert [e.term for e in log.entries_from(2)] == [2, 3]
        assert log.entries_from(4) == ()
        with pytest.raises(IndexError):
            log.entries_from(0)

    def test_as_list_is_a_copy(self):
        log = log_of(1)
        copy = log.as_list()
        copy.append(Entry(9, "x"))
        assert log.last_index == 1


class TestAppendNew:
    def test_append_returns_new_index(self):
        log = RaftLog()
        assert log.append_new(Entry(1, "a")) == 1
        assert log.append_new(Entry(1, "b")) == 2


class TestTryAppend:
    def test_append_to_empty_log(self):
        log = RaftLog()
        assert log.try_append(0, 0, [Entry(1, "a")])
        assert log.last_index == 1

    def test_gap_rejected(self):
        log = RaftLog()
        assert not log.try_append(1, 1, [Entry(1, "b")])

    def test_term_mismatch_rejected(self):
        log = log_of(1, 1)
        assert not log.try_append(2, 2, [Entry(3, "c")])
        assert log.last_index == 2  # unchanged

    def test_matching_prev_appends(self):
        log = log_of(1, 1)
        assert log.try_append(2, 1, [Entry(2, "c")])
        assert log.last_index == 3
        assert log.term_at(3) == 2

    def test_conflicting_suffix_deleted(self):
        log = log_of(1, 1, 2, 2)
        # New leader (term 3) overwrites from index 3.
        assert log.try_append(2, 1, [Entry(3, "x")])
        assert log.last_index == 3
        assert log.term_at(3) == 3
        assert log.entry_at(3).command == "x"

    def test_identical_entries_left_untouched(self):
        log = log_of(1, 2)
        original = log.entry_at(2)
        # Retransmission of entry 2 with the same term: no-op.
        assert log.try_append(1, 1, [Entry(2, original.command)])
        assert log.last_index == 2
        assert log.entry_at(2) == original

    def test_stale_retransmission_does_not_truncate(self):
        log = log_of(1, 2, 3)
        # A late AppendEntries covering only index 2 must not delete 3.
        assert log.try_append(1, 1, [Entry(2, "cmd2")])
        assert log.last_index == 3

    def test_heartbeat_is_a_consistency_probe(self):
        log = log_of(1, 2)
        assert log.try_append(2, 2, [])
        assert not log.try_append(2, 9, [])

    def test_multi_entry_append_with_partial_overlap(self):
        log = log_of(1, 1)
        entries = [Entry(1, "cmd2"), Entry(2, "new3"), Entry(2, "new4")]
        assert log.try_append(1, 1, entries)
        assert log.last_index == 4
        assert [log.term_at(i) for i in (2, 3, 4)] == [1, 2, 2]


class TestUpToDate:
    def test_higher_last_term_wins(self):
        log = log_of(1, 2)
        assert log.other_is_up_to_date(3, 1)
        assert not log.other_is_up_to_date(1, 99)

    def test_equal_term_longer_log_wins(self):
        log = log_of(1, 2)
        assert log.other_is_up_to_date(2, 2)
        assert log.other_is_up_to_date(2, 3)
        assert not log.other_is_up_to_date(2, 1)

    def test_empty_log_accepts_anything(self):
        log = RaftLog()
        assert log.other_is_up_to_date(0, 0)
        assert log.other_is_up_to_date(1, 1)
