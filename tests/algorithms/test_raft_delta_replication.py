"""Delta replication: per-follower cursors keep AppendEntries linear.

The leader tracks two cursors per follower: ``next_index`` (the confirmed
repair floor, as in the Raft paper) and ``sent_index`` (the optimistic
pipeline cursor — the highest index already shipped, acknowledged or not).
Each AppendEntries carries only the suffix beyond ``sent_index``, so
pipelining K proposals costs O(K) replicated entries instead of the
O(K^2) a full-suffix resend per proposal would; a rejection rewinds
``sent_index`` to the floor and the classic decrement-and-retry repair
takes over unchanged.
"""

import pytest

from repro.algorithms.raft import ClientPropose, LEADER, Put, RaftNode
from repro.algorithms.raft.log import Entry
from repro.algorithms.raft.messages import AppendEntries, AppendEntriesReply
from repro.algorithms.raft.state_machine import KeyValueStateMachine
from repro.sim import trace as tr
from repro.sim.failures import CrashPlan
from repro.sim.messages import Envelope
from repro.sim.network import ConstantDelay, NetworkConfig
from repro.sim.ops import Send

from tests.algorithms.test_raft_replication import run_replication


class FakeAPI:
    def __init__(self, pid=0, n=3):
        self.pid = pid
        self.n = n


def leader_node(log_len=0, n=3):
    """A RaftNode hand-placed into LEADER state with ``log_len`` entries."""
    node = RaftNode(
        state_machine_factory=KeyValueStateMachine,
        propose_on_leadership=False,
        cluster_size=n,
        election_timeout=(1000.0, 2000.0),
    )
    node.current_term = 1
    node.state = LEADER
    for i in range(1, log_len + 1):
        node.log.append_new(Entry(1, Put(f"k{i}", i)))
    followers = range(1, n)
    node.next_index = {pid: 1 for pid in followers}
    node.match_index = {pid: 0 for pid in followers}
    node.sent_index = {pid: 0 for pid in followers}
    return node


def sent_appends(ops, dst=None):
    return [
        op.payload
        for op in ops
        if isinstance(op, Send) and (dst is None or op.dst == dst)
    ]


class TestCursorMechanics:
    def test_first_send_carries_whole_suffix(self):
        node = leader_node(log_len=3)
        (msg,) = sent_appends(node._send_append_entries(FakeAPI(), 1))
        assert msg.prev_log_index == 0
        assert [e.command.key for e in msg.entries] == ["k1", "k2", "k3"]
        assert node.sent_index[1] == 3

    def test_pipelined_send_carries_only_the_delta(self):
        # No ack has arrived (next_index still 1), yet the second send must
        # start past sent_index — this is the quadratic-resend fix.
        node = leader_node(log_len=3)
        list(node._send_append_entries(FakeAPI(), 1))
        node.log.append_new(Entry(1, Put("k4", 4)))
        (msg,) = sent_appends(node._send_append_entries(FakeAPI(), 1))
        assert msg.prev_log_index == 3
        assert [e.command.key for e in msg.entries] == ["k4"]
        assert node.sent_index[1] == 4

    def test_nothing_new_sends_empty_heartbeat(self):
        node = leader_node(log_len=2)
        list(node._send_append_entries(FakeAPI(), 1))
        (msg,) = sent_appends(node._send_append_entries(FakeAPI(), 1))
        assert msg.entries == ()
        assert msg.prev_log_index == 2

    def test_rejection_rewinds_pipeline_cursor_to_floor(self):
        node = leader_node(log_len=3)
        node.next_index[1] = 4  # stale optimism from a previous incarnation
        node.sent_index[1] = 3
        reply = AppendEntriesReply(1, False, 1)
        (msg,) = sent_appends(node._on_append_entries_reply(FakeAPI(), reply))
        assert node.next_index[1] == 3
        assert node.sent_index[1] >= 3  # resend advanced it again
        assert msg.prev_log_index == 2  # probing one entry earlier

    def test_repair_walks_back_to_follower_prefix(self):
        # Repeated rejections walk next_index down to 1; each probe resends
        # from the floor because the rejection rewound sent_index.
        node = leader_node(log_len=3)
        node.next_index[1] = 4
        node.sent_index[1] = 3
        api = FakeAPI()
        for expected_floor in (3, 2, 1):
            (msg,) = sent_appends(
                node._on_append_entries_reply(api, AppendEntriesReply(1, False, 1))
            )
            assert node.next_index[1] == expected_floor
            assert msg.prev_log_index == expected_floor - 1
        # The final probe from index 1 carries the full log: repair done.
        assert len(msg.entries) == 3

    def test_success_ack_advances_both_cursors(self):
        node = leader_node(log_len=3)
        list(node._send_append_entries(FakeAPI(), 1))
        reply = AppendEntriesReply(1, True, 1, match_index=3)
        ops = list(node._on_append_entries_reply(FakeAPI(), reply))
        assert node.match_index[1] == 3
        assert node.next_index[1] == 4
        assert node.sent_index[1] == 3
        # The ack reached a majority, so commit advances and the commit
        # index is broadcast — but nothing is resent to the acked
        # follower (the broadcast may ship the delta to the *other* one).
        assert node.commit_index == 3
        assert all(msg.entries == () for msg in sent_appends(ops, dst=1))

    def test_stale_ack_does_not_rewind_cursors(self):
        node = leader_node(log_len=3)
        list(node._send_append_entries(FakeAPI(), 1))
        list(node._on_append_entries_reply(
            FakeAPI(), AppendEntriesReply(1, True, 1, match_index=3)
        ))
        # A reordered older ack arrives late.
        list(node._on_append_entries_reply(
            FakeAPI(), AppendEntriesReply(1, True, 1, match_index=1)
        ))
        assert node.match_index[1] == 3
        assert node.next_index[1] == 4
        assert node.sent_index[1] == 3

    def test_ack_for_older_entries_triggers_delta_resend(self):
        node = leader_node(log_len=2)
        list(node._send_append_entries(FakeAPI(), 1))
        node.log.append_new(Entry(1, Put("k3", 3)))
        reply = AppendEntriesReply(1, True, 1, match_index=2)
        with_entries = [
            msg
            for msg in sent_appends(
                node._on_append_entries_reply(FakeAPI(), reply), dst=1
            )
            if msg.entries
        ]
        (msg,) = with_entries
        assert msg.prev_log_index == 2
        assert [e.command.key for e in msg.entries] == ["k3"]


def entries_shipped_per_follower(result):
    """Total AppendEntries entries each pid received, from the trace."""
    totals = {}
    for event in result.trace.events:
        if event.kind != tr.SEND or not isinstance(event.detail, Envelope):
            continue
        payload = event.detail.payload
        if isinstance(payload, AppendEntries):
            totals[event.detail.dst] = (
                totals.get(event.detail.dst, 0) + len(payload.entries)
            )
    return totals


class TestLinearReplicationTraffic:
    @pytest.mark.parametrize("seed", range(3))
    def test_entries_shipped_stay_linear_in_log_length(self, seed):
        # 8 staggered proposals, stable leader, no losses: each follower
        # should receive each entry about once.  The pre-cursor behaviour
        # (full suffix per proposal) ships Theta(K^2) — 36+ entries per
        # follower here — so the 2K bound cleanly separates the two.
        commands = [Put(f"key-{i}", i) for i in range(8)]
        nodes, result = run_replication(
            3,
            commands,
            seed=seed,
            staggered=True,
            network=NetworkConfig(delay_model=ConstantDelay(1.0)),
            max_time=900.0,
        )
        for node in nodes:
            assert node.machine.data == {f"key-{i}": i for i in range(8)}
        shipped = entries_shipped_per_follower(result)
        for pid, total in shipped.items():
            assert total <= 2 * len(commands), (pid, total, shipped)

    def test_restarted_follower_repaired_from_next_index(self, seed=5):
        # After the follower restarts with an empty log, the leader walks
        # next_index back and re-ships the prefix once; afterwards the
        # cursors agree with the follower's actual log.
        commands = [Put(f"key-{i}", i) for i in range(4)]
        nodes, result = run_replication(
            3,
            commands,
            seed=seed,
            crash_plans=[CrashPlan(1, at_time=2.0, restart_at=80.0)],
            max_time=900.0,
        )
        assert nodes[1].machine.data == {f"key-{i}": i for i in range(4)}
        leaders = [n for n in nodes if n.state is LEADER]
        assert leaders, "no leader at end of run"
        leader = leaders[-1]
        for pid in leader.next_index:
            assert leader.next_index[pid] <= leader.log.last_index + 1
            assert leader.sent_index[pid] <= leader.log.last_index
            assert leader.sent_index[pid] >= leader.next_index[pid] - 1
