"""Unit tests for the coin-flip reconciliator (incl. the biased variant)."""

import pytest

from repro.algorithms.ben_or.reconciliator import CoinFlipReconciliator
from repro.core.confidence import VACILLATE
from repro.sim.async_runtime import AsyncRuntime
from repro.sim.process import Process


class OneFlip(Process):
    def __init__(self, reconciliator, rounds=1):
        self.reconciliator = reconciliator
        self.rounds = rounds
        self.flips = []

    def run(self, api):
        for round_no in range(1, self.rounds + 1):
            value = yield from self.reconciliator.invoke(
                api, VACILLATE, api.init_value, round_no
            )
            self.flips.append(value)


def flip_many(reconciliator, rounds=400, seed=0):
    process = OneFlip(reconciliator, rounds)
    AsyncRuntime([process], seed=seed, stop_when="all_halted").run()
    return process.flips


class TestFairCoin:
    def test_flips_cover_the_domain(self):
        flips = flip_many(CoinFlipReconciliator())
        assert set(flips) == {0, 1}

    def test_roughly_balanced(self):
        flips = flip_many(CoinFlipReconciliator())
        ones = sum(flips)
        assert 120 < ones < 280  # 400 fair flips

    def test_custom_domain(self):
        flips = flip_many(CoinFlipReconciliator(("a", "b", "c")))
        assert set(flips) == {"a", "b", "c"}

    def test_flip_annotated_in_trace(self):
        process = OneFlip(CoinFlipReconciliator(), rounds=3)
        result = AsyncRuntime([process], seed=1, stop_when="all_halted").run()
        assert len(result.trace.annotations("coin")) == 3


class TestBiasedCoin:
    def test_bias_shifts_the_distribution(self):
        flips = flip_many(CoinFlipReconciliator((0, 1), weights=(1.0, 9.0)))
        ones = sum(flips)
        assert ones > 300  # expected 360 of 400

    def test_every_value_remains_possible(self):
        flips = flip_many(
            CoinFlipReconciliator((0, 1), weights=(1.0, 19.0)), rounds=2000
        )
        assert 0 in flips  # the reconciliator guarantee needs this

    def test_weights_validation(self):
        with pytest.raises(ValueError):
            CoinFlipReconciliator((0, 1), weights=(1.0,))
        with pytest.raises(ValueError):
            CoinFlipReconciliator((0, 1), weights=(1.0, 0.0))
        with pytest.raises(ValueError):
            CoinFlipReconciliator((0, 1), weights=(1.0, -2.0))

    def test_empty_domain_rejected(self):
        with pytest.raises(ValueError):
            CoinFlipReconciliator(())


class TestDeterminism:
    def test_same_seed_same_flips(self):
        a = flip_many(CoinFlipReconciliator(), rounds=50, seed=9)
        b = flip_many(CoinFlipReconciliator(), rounds=50, seed=9)
        assert a == b
