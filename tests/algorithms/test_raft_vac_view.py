"""Unit tests for the Raft VAC-view extraction and Lemma 7 checker."""

import pytest

from repro.algorithms.raft.vac import check_raft_vac, raft_vac_outcomes
from repro.core.confidence import ADOPT, COMMIT, VACILLATE
from repro.core.properties import PropertyViolation
from repro.sim import trace as tr
from repro.sim.trace import Trace


def annotate(trace, pid, term, confidence, value, time=0.0):
    trace.record(time, tr.ANNOTATE, pid, ("vac", (term, confidence, value)))


class TestOutcomeExtraction:
    def test_strongest_confidence_wins_per_term(self):
        trace = Trace()
        annotate(trace, 0, 1, VACILLATE, "x", 0.0)
        annotate(trace, 0, 1, ADOPT, "v", 1.0)
        annotate(trace, 0, 1, COMMIT, "v", 2.0)
        outcomes = raft_vac_outcomes(trace)
        assert outcomes == {1: {0: (COMMIT, "v")}}

    def test_weaker_later_annotation_does_not_downgrade(self):
        trace = Trace()
        annotate(trace, 0, 1, ADOPT, "v", 0.0)
        annotate(trace, 0, 1, VACILLATE, "x", 1.0)
        assert raft_vac_outcomes(trace)[1][0] == (ADOPT, "v")

    def test_terms_kept_separate(self):
        trace = Trace()
        annotate(trace, 0, 1, VACILLATE, "x")
        annotate(trace, 0, 2, ADOPT, "v")
        outcomes = raft_vac_outcomes(trace)
        assert set(outcomes) == {1, 2}

    def test_correct_filter(self):
        trace = Trace()
        annotate(trace, 0, 1, ADOPT, "v")
        annotate(trace, 1, 1, ADOPT, "w")
        outcomes = raft_vac_outcomes(trace, correct=[0])
        assert outcomes[1] == {0: (ADOPT, "v")}


class TestLemma7Checker:
    def test_coherent_term_passes(self):
        trace = Trace()
        annotate(trace, 0, 1, COMMIT, "v")
        annotate(trace, 1, 1, ADOPT, "v")
        annotate(trace, 2, 1, VACILLATE, "w")
        assert check_raft_vac(trace) == 1

    def test_commit_with_divergent_adopt_fails(self):
        trace = Trace()
        annotate(trace, 0, 1, COMMIT, "v")
        annotate(trace, 1, 1, ADOPT, "w")
        with pytest.raises(PropertyViolation):
            check_raft_vac(trace)

    def test_two_committed_values_fail(self):
        trace = Trace()
        annotate(trace, 0, 1, COMMIT, "v")
        annotate(trace, 1, 1, COMMIT, "w")
        with pytest.raises(PropertyViolation):
            check_raft_vac(trace)

    def test_divergent_adopts_without_commit_fail(self):
        trace = Trace()
        annotate(trace, 0, 1, ADOPT, "v")
        annotate(trace, 1, 1, ADOPT, "w")
        with pytest.raises(PropertyViolation):
            check_raft_vac(trace)

    def test_vacillate_only_terms_are_fine(self):
        trace = Trace()
        annotate(trace, 0, 1, VACILLATE, "a")
        annotate(trace, 1, 1, VACILLATE, "b")
        annotate(trace, 0, 2, VACILLATE, "c")
        assert check_raft_vac(trace) == 2

    def test_empty_trace_checks_zero_terms(self):
        assert check_raft_vac(Trace()) == 0
