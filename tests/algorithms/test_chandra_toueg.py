"""Tests for Chandra-Toueg consensus and the adaptive failure detector."""

import pytest

from repro.algorithms.chandra_toueg import (
    AdaptiveTimeoutDetector,
    run_chandra_toueg,
)
from repro.algorithms.chandra_toueg.node import coordinator_of
from repro.algorithms.raft.vac import check_raft_vac
from repro.core.confidence import ADOPT, COMMIT
from repro.core.properties import (
    check_agreement,
    check_termination,
    check_validity,
)
from repro.sim.failures import CrashPlan
from repro.sim.network import NetworkConfig, SkewedDelay, UniformDelay


class TestFailureDetector:
    def test_initial_timeout_applies_to_everyone(self):
        detector = AdaptiveTimeoutDetector(initial_timeout=5.0)
        assert detector.timeout(0) == 5.0
        assert detector.timeout(7) == 5.0

    def test_false_suspicion_doubles_the_timeout(self):
        detector = AdaptiveTimeoutDetector(initial_timeout=5.0)
        detector.suspected(3)
        assert detector.is_suspected(3)
        detector.heard_from(3)
        assert not detector.is_suspected(3)
        assert detector.timeout(3) == 10.0
        assert detector.false_suspicions == 1

    def test_hearing_without_suspicion_changes_nothing(self):
        detector = AdaptiveTimeoutDetector(initial_timeout=5.0)
        detector.heard_from(3)
        assert detector.timeout(3) == 5.0
        assert detector.false_suspicions == 0

    def test_timeout_growth_is_capped(self):
        detector = AdaptiveTimeoutDetector(initial_timeout=5.0, max_timeout=12.0)
        for _ in range(5):
            detector.suspected(1)
            detector.heard_from(1)
        assert detector.timeout(1) == 12.0

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveTimeoutDetector(initial_timeout=0.0)
        with pytest.raises(ValueError):
            AdaptiveTimeoutDetector(initial_timeout=10.0, max_timeout=5.0)


class TestConsensus:
    @pytest.mark.parametrize("seed", range(10))
    def test_agreement_validity_termination(self, seed):
        inits = [1, 2, 3, 4, 5]
        result = run_chandra_toueg(inits, seed=seed)
        check_agreement(result.decisions)
        check_validity(result.decisions, inits)
        check_termination(result.decisions, range(5))

    @pytest.mark.parametrize("n", [1, 3, 5, 7])
    def test_cluster_sizes(self, n):
        result = run_chandra_toueg(list(range(n)), seed=2)
        check_agreement(result.decisions)
        check_termination(result.decisions, range(n))

    def test_fast_path_decides_in_round_one(self):
        # Fault-free with comfortable timeouts: the first coordinator locks.
        result = run_chandra_toueg([9, 8, 7], seed=0)
        commits = [
            (round_no, value)
            for _pid, _t, (round_no, conf, value) in result.trace.annotations("vac")
            if conf is COMMIT
        ]
        assert min(r for r, _v in commits) == 1

    @pytest.mark.parametrize("seed", range(8))
    def test_per_round_coherence(self, seed):
        result = run_chandra_toueg([1, 2, 3, 4, 5], seed=seed)
        assert check_raft_vac(result.trace) >= 1


class TestUnderFailures:
    @pytest.mark.parametrize("seed", range(6))
    def test_first_coordinator_crash(self, seed):
        # Kill pid 0 — round 1's coordinator — before it can lock.
        inits = [1, 2, 3, 4, 5]
        result = run_chandra_toueg(
            inits, seed=seed, crash_plans=[CrashPlan(0, at_time=0.5)]
        )
        check_agreement(result.decisions)
        check_termination(result.decisions, [1, 2, 3, 4])
        check_validity(result.decisions, inits)

    @pytest.mark.parametrize("seed", range(5))
    def test_minority_crashes(self, seed):
        result = run_chandra_toueg(
            [1, 2, 3, 4, 5],
            seed=seed,
            crash_plans=[
                CrashPlan(0, at_time=2.0),
                CrashPlan(1, after_sends=6),
            ],
        )
        check_agreement(result.decisions)
        check_termination(result.decisions, [2, 3, 4])

    @pytest.mark.parametrize("seed", range(4))
    def test_slow_coordinator_is_falsely_suspected_then_tolerated(self, seed):
        """A slow (not crashed) pid 0 triggers false suspicions; the adaptive
        timeouts must absorb them and the run must still agree."""
        network = NetworkConfig(
            delay_model=SkewedDelay(UniformDelay(0.5, 1.5), slow_pids=[0], factor=8.0)
        )
        result = run_chandra_toueg(
            [1, 2, 3, 4, 5], seed=seed, network=network, initial_timeout=4.0
        )
        check_agreement(result.decisions)
        check_termination(result.decisions, range(5))

    def test_locking_pins_later_rounds(self):
        """Once any coordinator locks a value, every later adopt annotation
        must carry that value — the leader-completeness analogue."""
        for seed in range(8):
            result = run_chandra_toueg(
                [1, 2, 3, 4, 5],
                seed=seed,
                crash_plans=[CrashPlan(0, at_time=0.5)],
            )
            annotations = result.trace.annotations("vac")
            commits = [
                (r, v) for _p, _t, (r, c, v) in annotations if c is COMMIT
            ]
            if not commits:
                continue
            lock_round, locked = min(commits)
            for _p, _t, (r, c, v) in annotations:
                if c is ADOPT and r > lock_round:
                    assert v == locked


def test_coordinator_rotation():
    assert coordinator_of(1, 5) == 0
    assert coordinator_of(5, 5) == 4
    assert coordinator_of(6, 5) == 0
