"""End-to-end tests for decomposed Ben-Or consensus (Section 4.2, Lemma 1+5)."""

import pytest

from repro.algorithms.ben_or import MonolithicBenOr, ben_or_template_consensus
from repro.analysis.metrics import decision_rounds, rounds_used
from repro.core.properties import (
    check_agreement,
    check_all_rounds,
    check_no_decision_without_commit,
    check_termination,
    check_validity,
)
from repro.sim.async_runtime import AsyncRuntime
from repro.sim.failures import CrashPlan
from repro.sim.network import ExponentialDelay, NetworkConfig, SkewedDelay, UniformDelay


def run_ben_or(init_values, t, seed=0, crash_plans=(), network=None, max_time=2000.0):
    n = len(init_values)
    processes = [ben_or_template_consensus() for _ in range(n)]
    runtime = AsyncRuntime(
        processes,
        init_values=init_values,
        t=t,
        seed=seed,
        crash_plans=crash_plans,
        network=network,
        max_time=max_time,
    )
    return runtime.run()


class TestBasicConsensus:
    @pytest.mark.parametrize("seed", range(10))
    def test_agreement_validity_termination(self, seed):
        inits = [0, 1, 0, 1, 1]
        result = run_ben_or(inits, t=2, seed=seed)
        check_agreement(result.decisions)
        check_validity(result.decisions, inits)
        check_termination(result.decisions, range(5))

    def test_unanimous_inputs_decide_in_one_round(self):
        result = run_ben_or([1] * 7, t=3, seed=0)
        assert result.decided_value() == 1
        assert all(m == 1 for m in decision_rounds(result.trace).values())

    @pytest.mark.parametrize("n,t", [(3, 1), (5, 2), (9, 4), (11, 5)])
    def test_various_system_sizes(self, n, t):
        inits = [i % 2 for i in range(n)]
        result = run_ben_or(inits, t=t, seed=42)
        check_agreement(result.decisions)
        check_termination(result.decisions, range(n))

    def test_non_binary_domain(self):
        processes = [
            ben_or_template_consensus(domain=("a", "b", "c")) for _ in range(5)
        ]
        runtime = AsyncRuntime(
            processes, init_values=["a", "b", "c", "a", "b"], t=2, seed=3,
            max_time=5000.0,
        )
        result = runtime.run()
        check_agreement(result.decisions)
        check_validity(result.decisions, ["a", "b", "c"])


class TestUnderFailures:
    @pytest.mark.parametrize("seed", range(8))
    def test_t_crashes_tolerated(self, seed):
        inits = [0, 1, 0, 1, 1]
        result = run_ben_or(
            inits,
            t=2,
            seed=seed,
            crash_plans=[
                CrashPlan(0, at_time=1.0 + seed * 0.3),
                CrashPlan(3, after_sends=4),
            ],
        )
        live = [1, 2, 4]
        check_agreement(result.decisions)
        check_termination(result.decisions, live)
        check_validity(result.decisions, inits)

    @pytest.mark.parametrize("seed", range(5))
    def test_skewed_scheduler_cannot_break_safety(self, seed):
        network = NetworkConfig(
            delay_model=SkewedDelay(UniformDelay(0.5, 1.5), slow_pids=[0, 1], factor=6.0)
        )
        inits = [0, 0, 1, 1, 1]
        result = run_ben_or(inits, t=2, seed=seed, network=network)
        check_agreement(result.decisions)
        check_all_rounds(result.trace, "vac")

    @pytest.mark.parametrize("seed", range(5))
    def test_heavy_tailed_latency(self, seed):
        network = NetworkConfig(delay_model=ExponentialDelay(mean=2.0))
        result = run_ben_or([0, 1, 1, 0, 1], t=2, seed=seed, network=network)
        check_agreement(result.decisions)


class TestRoundProperties:
    @pytest.mark.parametrize("seed", range(10))
    def test_every_round_satisfies_vac_properties(self, seed):
        result = run_ben_or([0, 1, 0, 1, 1], t=2, seed=seed)
        rounds = check_all_rounds(result.trace, "vac")
        assert rounds >= 1
        check_no_decision_without_commit(result.trace, "vac")

    def test_decisions_within_one_round_of_each_other(self):
        # Commit coherence: once anyone commits in round m, everyone else
        # adopts the same value, so all must commit by round m + 1.
        for seed in range(10):
            result = run_ben_or([0, 1, 0, 1, 1], t=2, seed=seed)
            rounds = decision_rounds(result.trace)
            assert max(rounds.values()) - min(rounds.values()) <= 1


class TestMonolithicEquivalence:
    """Experiment E4: the decomposition is behaviour-preserving."""

    @pytest.mark.parametrize("seed", range(10))
    def test_same_seed_same_decision_and_rounds(self, seed):
        inits = [0, 1, 1, 0, 1]
        decomposed = run_ben_or(inits, t=2, seed=seed)
        runtime = AsyncRuntime(
            [MonolithicBenOr() for _ in range(5)],
            init_values=inits,
            t=2,
            seed=seed,
            max_time=2000.0,
        )
        monolithic = runtime.run()
        assert decomposed.decisions == monolithic.decisions
        assert rounds_used(decomposed.trace) == rounds_used(monolithic.trace)

    @pytest.mark.parametrize("seed", range(5))
    def test_same_message_counts(self, seed):
        inits = [1, 0, 1, 0, 0]
        decomposed = run_ben_or(inits, t=2, seed=seed)
        monolithic = AsyncRuntime(
            [MonolithicBenOr() for _ in range(5)],
            init_values=inits, t=2, seed=seed, max_time=2000.0,
        ).run()
        assert (
            decomposed.trace.message_count() == monolithic.trace.message_count()
        )
