"""Raft as a general replicated log: client proposals + KV state machine.

These tests exercise the parts of the Raft substrate the single-shot
consensus specialization does not: multi-entry logs, client-driven
proposals, follower catch-up after restart, and NextIndex repair.
"""

import pytest

from repro.algorithms.raft import ClientPropose, LEADER, Put, RaftNode
from repro.algorithms.raft.state_machine import KeyValueStateMachine
from repro.sim.async_runtime import AsyncRuntime
from repro.sim.failures import CrashPlan
from repro.sim.network import ConstantDelay, NetworkConfig, UniformDelay
from repro.sim.ops import Broadcast, Receive, SetTimer, TimerFired
from repro.sim.process import FunctionProcess


def kv_node(cluster_size):
    return RaftNode(
        state_machine_factory=KeyValueStateMachine,
        propose_on_leadership=False,
        cluster_size=cluster_size,
    )


def make_client(commands, period=8.0, start=5.0, staggered=False):
    """A client that broadcasts each command periodically until the run ends.

    Rebroadcasting makes proposals survive leader changes; the leader-side
    duplicate check keeps the log clean.  With ``staggered=True`` the i-th
    command is first introduced only on the i-th tick, so (in a fault-free
    run with latencies well under the period) log order matches list order;
    concurrent proposals otherwise land in arbitrary order, as in real Raft.
    """

    def client(api):
        yield SetTimer(start, "tick")
        tick = 0
        while True:
            yield Receive(
                count=1,
                predicate=lambda e: isinstance(e.payload, TimerFired),
            )
            tick += 1
            visible = commands[:tick] if staggered else commands
            for i, command in enumerate(visible):
                yield Broadcast(ClientPropose(("client", i), command), include_self=False)
            yield SetTimer(period, "tick")

    return FunctionProcess(client)


def run_replication(
    n_nodes,
    commands,
    *,
    seed=0,
    crash_plans=(),
    network=None,
    max_time=300.0,
    staggered=False,
):
    nodes = [kv_node(n_nodes) for _ in range(n_nodes)]
    processes = nodes + [make_client(commands, staggered=staggered)]

    def all_applied(runtime):
        if runtime.pending_restarts:
            return False  # wait for scheduled restarts to rejoin first
        live = [
            node
            for pid, node in enumerate(nodes)
            if runtime.is_alive(pid)
        ]
        return bool(live) and all(
            node.machine.applied_count >= len(commands) for node in live
        )

    runtime = AsyncRuntime(
        processes,
        t=(n_nodes - 1) // 2,
        network=network or NetworkConfig(delay_model=UniformDelay(0.5, 1.5)),
        seed=seed,
        crash_plans=crash_plans,
        max_time=max_time,
        stop_when=all_applied,
    )
    result = runtime.run()
    return nodes, result


#: Distinct keys: the converged map is independent of proposal arrival order.
COMMANDS = [Put("a", 1), Put("b", 2), Put("c", 3)]
EXPECTED = {"a": 1, "b": 2, "c": 3}


class TestReplication:
    @pytest.mark.parametrize("seed", range(5))
    def test_all_nodes_converge_to_same_map(self, seed):
        nodes, _result = run_replication(3, COMMANDS, seed=seed)
        maps = [node.machine.data for node in nodes]
        assert all(m == EXPECTED for m in maps), maps

    @pytest.mark.parametrize("seed", range(5))
    def test_all_logs_identical_after_convergence(self, seed):
        nodes, _result = run_replication(5, COMMANDS, seed=seed)
        logs = [node.log.as_list() for node in nodes]
        assert all(log == logs[0] for log in logs)
        assert sorted((e.command.key, e.command.value) for e in logs[0]) == [
            ("a", 1), ("b", 2), ("c", 3),
        ]

    @pytest.mark.parametrize("seed", range(3))
    def test_staggered_proposals_apply_in_order(self, seed):
        # Constant latency keeps arrival order equal to send order, so the
        # staggered client's introduction order is the log order.
        nodes, _result = run_replication(
            3,
            COMMANDS,
            seed=seed,
            staggered=True,
            network=NetworkConfig(delay_model=ConstantDelay(1.0)),
            max_time=600.0,
        )
        for node in nodes:
            assert [e.command for e in node.log.as_list()] == COMMANDS

    def test_no_duplicate_entries_despite_client_retries(self):
        nodes, _result = run_replication(3, COMMANDS, seed=1, max_time=400.0)
        for node in nodes:
            commands = [e.command for e in node.log.as_list()]
            assert len(commands) == len(set((c.key, c.value) for c in commands))

    @pytest.mark.parametrize("seed", range(3))
    def test_follower_restart_catches_up(self, seed):
        nodes, _result = run_replication(
            3,
            COMMANDS,
            seed=seed,
            crash_plans=[CrashPlan(2, at_time=10.0, restart_at=60.0)],
            max_time=600.0,
        )
        assert nodes[2].machine.data == EXPECTED

    def test_next_index_repair_backfills_stale_follower(self):
        # A follower that crashed before the first append must be repaired
        # via next_index decrements / full-log resends after it restarts.
        nodes, _result = run_replication(
            3,
            COMMANDS,
            seed=5,
            crash_plans=[CrashPlan(1, at_time=2.0, restart_at=80.0)],
            max_time=800.0,
        )
        assert nodes[1].machine.data == EXPECTED
        assert nodes[1].log.last_index >= len(COMMANDS)
