"""Unit tests for Ben-Or's VAC object in isolation (Lemma 5)."""

import pytest

from repro.algorithms.ben_or.messages import Ratify, Report
from repro.algorithms.ben_or.vac import BenOrVac
from repro.core.confidence import ADOPT, COMMIT, VACILLATE
from repro.core.properties import check_vac_round
from repro.sim.async_runtime import AsyncRuntime
from repro.sim.failures import CrashPlan

from tests.helpers import OneShotDetector, collect_outcomes


def run_vac(init_values, t, seed=0, crash_plans=(), correct=None):
    n = len(init_values)
    processes = [OneShotDetector(BenOrVac()) for _ in range(n)]
    runtime = AsyncRuntime(
        processes,
        init_values=init_values,
        t=t,
        seed=seed,
        crash_plans=crash_plans,
        stop_when="all_halted",
        max_time=100.0,
    )
    result = runtime.run()
    return collect_outcomes(result.trace, correct)


class TestConvergence:
    @pytest.mark.parametrize("value", [0, 1])
    def test_unanimous_inputs_commit(self, value):
        outcomes = run_vac([value] * 5, t=2)
        assert all(o == (COMMIT, value) for o in outcomes.values())

    def test_unanimous_with_crash_still_commits(self):
        outcomes = run_vac(
            [1] * 5, t=2, crash_plans=[CrashPlan(0, at_time=0.2)], correct=[1, 2, 3, 4]
        )
        assert len(outcomes) == 4
        assert all(o == (COMMIT, 1) for o in outcomes.values())


class TestCoherence:
    @pytest.mark.parametrize("seed", range(20))
    def test_mixed_inputs_are_always_coherent(self, seed):
        outcomes = run_vac([0, 1, 0, 1, 1], t=2, seed=seed)
        check_vac_round(outcomes)

    @pytest.mark.parametrize("seed", range(10))
    def test_coherence_under_partial_broadcast_crash(self, seed):
        # Crash a process mid-broadcast: some processes see its report,
        # others do not — the classic source of disagreement.
        outcomes = run_vac(
            [0, 1, 0, 1, 1],
            t=2,
            seed=seed,
            crash_plans=[CrashPlan(4, after_sends=2)],
            correct=[0, 1, 2, 3],
        )
        check_vac_round(outcomes)


class TestOutcomeStructure:
    def test_majority_input_tends_to_win(self):
        # With 4 of 5 preferring 1, value 1 must be the only possible
        # adopt/commit value (0 can never gather a strict majority).
        for seed in range(10):
            outcomes = run_vac([1, 1, 1, 1, 0], t=2, seed=seed)
            for confidence, value in outcomes.values():
                if confidence in (ADOPT, COMMIT):
                    assert value == 1

    def test_vacillate_keeps_own_value(self):
        # An exactly balanced 2-2 split with t=1 forces everyone to see no
        # majority; all must vacillate with their own input.
        for seed in range(5):
            outcomes = run_vac([0, 0, 1, 1], t=1, seed=seed)
            for pid, (confidence, value) in outcomes.items():
                if confidence is VACILLATE:
                    assert value == [0, 0, 1, 1][pid]

    def test_balanced_split_never_commits(self):
        # No value can reach a strict majority of reports in a 2-2 split,
        # so no ratify messages exist and nobody commits or adopts.
        for seed in range(10):
            outcomes = run_vac([0, 0, 1, 1], t=1, seed=seed)
            assert all(c is VACILLATE for c, _v in outcomes.values())


class TestMessages:
    def test_report_and_ratify_round_tagging(self):
        report = Report(3, 1)
        assert report.round_no == 3 and report.value == 1
        ratify = Ratify(3, None)
        assert not ratify.is_ratify
        assert Ratify(3, 0).is_ratify
