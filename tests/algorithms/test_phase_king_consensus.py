"""End-to-end tests for decomposed Phase-King consensus (Section 4.1)."""

import pytest

from repro.algorithms.phase_king import (
    MonolithicPhaseKing,
    king_of_round,
    run_phase_king,
)
from repro.core.properties import (
    check_agreement,
    check_all_rounds,
    check_termination,
    check_validity,
)
from repro.sim.failures import (
    anti_phase_king_strategy,
    equivocating_strategy,
    random_noise_strategy,
    silent_strategy,
)
from repro.sim.sync_runtime import SyncRuntime

STRATEGIES = {
    "silent": lambda: silent_strategy,
    "noise": random_noise_strategy,
    "equivocating": equivocating_strategy,
    "adaptive": anti_phase_king_strategy,
}


class TestFaultFree:
    @pytest.mark.parametrize("mode", ["fixed", "early"])
    def test_unanimous(self, mode):
        result = run_phase_king([1, 1, 1, 1], t=1, mode=mode)
        check_agreement(result.decisions)
        assert result.decided_value() == 1
        check_termination(result.decisions, range(4))

    @pytest.mark.parametrize("mode", ["fixed", "early"])
    @pytest.mark.parametrize("seed", range(3))
    def test_mixed_inputs(self, mode, seed):
        inits = [0, 1, 0, 1, 1, 0, 1]
        result = run_phase_king(inits, t=2, mode=mode, seed=seed)
        check_agreement(result.decisions)
        check_validity(result.decisions, inits)
        check_termination(result.decisions, range(7))

    def test_exchange_budget_fixed_mode(self):
        # Fixed mode: exactly t + 1 template rounds of 3 exchanges.
        result = run_phase_king([0, 1, 0, 1], t=1, mode="fixed")
        assert result.exchanges == 6


class TestWithByzantine:
    @pytest.mark.parametrize("name", sorted(STRATEGIES))
    @pytest.mark.parametrize("seed", range(4))
    def test_fixed_mode_safe_and_live(self, name, seed):
        strategy_factory = STRATEGIES[name]
        inits = [0, 1, 0, 1, 1, 0, 1]
        byzantine = {2: strategy_factory(), 5: strategy_factory()}
        result = run_phase_king(inits, t=2, byzantine=byzantine, mode="fixed", seed=seed)
        correct = [p for p in range(7) if p not in byzantine]
        decisions = {p: result.decisions[p] for p in correct}
        check_agreement(decisions)
        check_validity(decisions, inits)
        check_termination(decisions, correct)

    @pytest.mark.parametrize("name", sorted(STRATEGIES))
    @pytest.mark.parametrize("seed", range(4))
    def test_early_mode_under_library_strategies(self, name, seed):
        strategy_factory = STRATEGIES[name]
        inits = [1, 0, 1, 0, 1, 0, 1]
        byzantine = {1: strategy_factory(), 4: strategy_factory()}
        result = run_phase_king(inits, t=2, byzantine=byzantine, mode="early", seed=seed)
        correct = [p for p in range(7) if p not in byzantine]
        decisions = {p: result.decisions[p] for p in correct}
        check_agreement(decisions)
        check_termination(decisions, correct)
        check_all_rounds(result.trace, "ac", correct=correct, validity=False)

    @pytest.mark.parametrize("n,t", [(4, 1), (7, 2), (10, 3), (13, 4)])
    def test_resilience_scaling(self, n, t):
        inits = [i % 2 for i in range(n)]
        byzantine = {pid: equivocating_strategy() for pid in range(n - t, n)}
        result = run_phase_king(inits, t=t, byzantine=byzantine, mode="fixed", seed=1)
        correct = [p for p in range(n) if p not in byzantine]
        decisions = {p: result.decisions[p] for p in correct}
        check_agreement(decisions)
        check_termination(decisions, correct)

    def test_byzantine_kings_cannot_block_termination(self):
        # Put Byzantine processes exactly on the first kings' pids: the
        # protocol must still finish within t + 1 rounds because at least
        # one of kings 0..t is correct.
        inits = [0, 1, 0, 1, 1, 0, 1]
        byzantine = {0: silent_strategy, 1: silent_strategy}
        result = run_phase_king(inits, t=2, byzantine=byzantine, mode="fixed", seed=0)
        correct = [p for p in range(7) if p not in byzantine]
        check_termination({p: result.decisions[p] for p in correct}, correct)


class TestValidation:
    def test_rejects_insufficient_resilience(self):
        with pytest.raises(ValueError):
            run_phase_king([0, 1, 0], t=1)  # 3t < n fails for n=3, t=1

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            run_phase_king([0, 1, 0, 1], t=1, mode="bogus")

    def test_king_rotation(self):
        assert king_of_round(1, 4) == 0
        assert king_of_round(4, 4) == 3
        assert king_of_round(5, 4) == 0


class TestMonolithicEquivalence:
    """Experiment E4 for the synchronous algorithm."""

    @pytest.mark.parametrize("seed", range(5))
    def test_fault_free_equivalence(self, seed):
        inits = [0, 1, 1, 0, 1, 0, 0]
        decomposed = run_phase_king(inits, t=2, mode="fixed", seed=seed)
        monolithic = SyncRuntime(
            [MonolithicPhaseKing(2) for _ in range(7)],
            init_values=inits,
            t=2,
            seed=seed,
            stop_when="all_decided",
            max_exchanges=12,
        ).run()
        assert decomposed.decisions == monolithic.decisions
        assert decomposed.trace.message_count() == monolithic.trace.message_count()

    @pytest.mark.parametrize("seed", range(5))
    def test_byzantine_equivalence(self, seed):
        # Same Byzantine strategy objects, same seed: the decomposed and
        # monolithic protocols must produce identical decisions.
        inits = [0, 1, 1, 0, 1, 0, 0]
        byz_pids = {3, 6}

        def build_byz():
            return {pid: equivocating_strategy() for pid in byz_pids}

        decomposed = run_phase_king(
            inits, t=2, byzantine=build_byz(), mode="fixed", seed=seed
        )
        from repro.sim.failures import ByzantineProcess

        processes = [
            ByzantineProcess(equivocating_strategy())
            if pid in byz_pids
            else MonolithicPhaseKing(2)
            for pid in range(7)
        ]
        monolithic = SyncRuntime(
            processes,
            init_values=inits,
            t=2,
            seed=seed,
            stop_pids=[p for p in range(7) if p not in byz_pids],
            stop_when="all_decided",
            max_exchanges=12,
        ).run()
        correct = [p for p in range(7) if p not in byz_pids]
        assert {p: decomposed.decisions[p] for p in correct} == {
            p: monolithic.decisions[p] for p in correct
        }
