"""Tests for the log-compaction / InstallSnapshot extension."""

import pytest

from repro.algorithms.raft import ClientPropose, Put, RaftNode
from repro.algorithms.raft.log import CompactedError, Entry, RaftLog
from repro.algorithms.raft.state_machine import (
    DecideStateMachine,
    KeyValueStateMachine,
)
from repro.sim.async_runtime import AsyncRuntime
from repro.sim.failures import CrashPlan
from repro.sim.network import NetworkConfig, UniformDelay
from repro.sim.ops import Broadcast, Receive, SetTimer, TimerFired
from repro.sim.process import FunctionProcess


def entries(*terms):
    return [Entry(term, f"cmd{i}") for i, term in enumerate(terms, 1)]


class TestLogCompaction:
    def test_compact_discards_prefix_keeps_semantics(self):
        log = RaftLog(entries(1, 1, 2, 3))
        log.compact_to(2)
        assert log.snapshot_index == 2
        assert log.snapshot_term == 1
        assert log.last_index == 4
        assert log.last_term == 3
        assert log.term_at(2) == 1  # remembered from the snapshot
        assert log.term_at(3) == 2

    def test_compacted_indices_raise(self):
        log = RaftLog(entries(1, 1, 2))
        log.compact_to(2)
        with pytest.raises(CompactedError):
            log.entry_at(1)
        with pytest.raises(CompactedError):
            log.term_at(1)
        with pytest.raises(CompactedError):
            log.entries_from(1)

    def test_compact_is_idempotent_and_bounded(self):
        log = RaftLog(entries(1, 2))
        log.compact_to(1)
        log.compact_to(1)  # no-op
        assert log.snapshot_index == 1
        with pytest.raises(IndexError):
            log.compact_to(5)

    def test_try_append_after_compaction(self):
        log = RaftLog(entries(1, 1, 2))
        log.compact_to(2)
        assert log.try_append(3, 2, [Entry(3, "new")])
        assert log.last_index == 4
        # Conflict deletion across the snapshot boundary:
        assert log.try_append(2, 1, [Entry(4, "overwrite")])
        assert log.last_index == 3
        assert log.term_at(3) == 4

    def test_try_append_overlapping_compacted_prefix(self):
        log = RaftLog(entries(1, 1))
        log.compact_to(2)
        # A stale message covering already-compacted entries only: accepted
        # as a no-op (it is committed history).
        assert log.try_append(0, 0, entries(1, 1))
        assert log.last_index == 2
        # One that extends beyond the snapshot: skip the covered part.
        assert log.try_append(0, 0, entries(1, 1) + [Entry(2, "tail")])
        assert log.last_index == 3
        assert log.term_at(3) == 2

    def test_install_snapshot_replaces_conflicting_log(self):
        log = RaftLog(entries(1, 1))
        log.install_snapshot(5, 3)
        assert log.snapshot_index == 5
        assert log.last_index == 5
        assert len(log) == 0

    def test_install_snapshot_keeps_consistent_suffix(self):
        log = RaftLog(entries(1, 1, 2, 2))
        log.install_snapshot(3, 2)  # matches local entry 3's term
        assert log.snapshot_index == 3
        assert log.last_index == 4
        assert log.entry_at(4).term == 2

    def test_install_snapshot_older_than_current_is_ignored(self):
        log = RaftLog(entries(1, 1, 2))
        log.compact_to(3)
        log.install_snapshot(2, 1)
        assert log.snapshot_index == 3


class TestStateMachineSnapshots:
    def test_kv_snapshot_roundtrip(self):
        machine = KeyValueStateMachine()
        machine.apply(1, Put("a", 1))
        image = machine.snapshot()
        machine.apply(2, Put("a", 2))
        machine.restore(image)
        assert machine.data == {"a": 1}
        assert machine.applied_count == 1

    def test_decide_snapshot_roundtrip(self):
        machine = DecideStateMachine()
        from repro.algorithms.raft.state_machine import DecideAndStop

        machine.apply(1, DecideAndStop("v"))
        image = machine.snapshot()
        machine.reset()
        machine.restore(image)
        assert machine.decision == "v"


def kv_node(threshold):
    return RaftNode(
        state_machine_factory=KeyValueStateMachine,
        propose_on_leadership=False,
        snapshot_threshold=threshold,
        cluster_size=3,
    )


COMMANDS = [Put(f"k{i}", i) for i in range(8)]
EXPECTED = {f"k{i}": i for i in range(8)}


def make_client(commands):
    def client(api):
        yield SetTimer(5.0, "tick")
        while True:
            yield Receive(
                count=1, predicate=lambda e: isinstance(e.payload, TimerFired)
            )
            for i, command in enumerate(commands):
                yield Broadcast(
                    ClientPropose(("client", i), command), include_self=False
                )
            yield SetTimer(8.0, "tick")

    return FunctionProcess(client)


def run_cluster(threshold, seed=0, crash_plans=(), max_time=800.0):
    nodes = [kv_node(threshold) for _ in range(3)]
    processes = nodes + [make_client(COMMANDS)]

    def all_caught_up(runtime):
        if runtime.pending_restarts:
            return False  # wait for scheduled restarts to rejoin first
        live = [
            node for pid, node in enumerate(nodes) if runtime.is_alive(pid)
        ]
        return bool(live) and all(
            node.machine.applied_count >= len(COMMANDS) for node in live
        )

    runtime = AsyncRuntime(
        processes,
        t=1,
        network=NetworkConfig(delay_model=UniformDelay(0.5, 1.5)),
        seed=seed,
        crash_plans=crash_plans,
        max_time=max_time,
        stop_when=all_caught_up,
    )
    return nodes, runtime.run()


class TestClusterWithSnapshots:
    @pytest.mark.parametrize("seed", range(4))
    def test_compaction_does_not_change_the_replicated_state(self, seed):
        nodes, result = run_cluster(threshold=3, seed=seed)
        assert all(node.machine.data == EXPECTED for node in nodes)
        compactions = result.trace.annotations("compacted")
        assert compactions, "threshold 3 over 8 commands must compact"

    @pytest.mark.parametrize("seed", range(4))
    def test_lagging_follower_repaired_via_install_snapshot(self, seed):
        # Node 2 sleeps through the whole stream; by the time it restarts
        # the leader has compacted, so only InstallSnapshot can repair it.
        nodes, result = run_cluster(
            threshold=2,
            seed=seed,
            crash_plans=[CrashPlan(2, at_time=2.0, restart_at=120.0)],
            max_time=2_000.0,
        )
        assert nodes[2].machine.data == EXPECTED
        installed = [
            (pid, value)
            for pid, _t, value in result.trace.annotations("snapshot_installed")
        ]
        assert any(pid == 2 for pid, _v in installed)

    def test_snapshot_survives_crash_restart(self):
        nodes, _result = run_cluster(
            threshold=2,
            seed=7,
            crash_plans=[CrashPlan(0, at_time=40.0, restart_at=60.0)],
            max_time=2_000.0,
        )
        assert nodes[0].machine.data == EXPECTED

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            RaftNode(snapshot_threshold=0)
