"""Unit tests for Phase-King's adopt-commit object in isolation (Lemma 2)."""

import pytest

from repro.algorithms.phase_king.adopt_commit import NO_PREFERENCE, PhaseKingAdoptCommit
from repro.core.confidence import ADOPT, COMMIT
from repro.core.properties import check_ac_round
from repro.sim.failures import (
    ByzantineProcess,
    anti_phase_king_strategy,
    equivocating_strategy,
    random_noise_strategy,
    silent_strategy,
)
from repro.sim.sync_runtime import SyncRuntime

from tests.helpers import OneShotDetector, collect_outcomes


def run_ac(init_values, t, byzantine=None, seed=0):
    """Run one AC invocation; byzantine maps pid -> strategy."""
    n = len(init_values)
    byzantine = byzantine or {}
    processes = []
    for pid in range(n):
        if pid in byzantine:
            processes.append(ByzantineProcess(byzantine[pid]))
        else:
            processes.append(OneShotDetector(PhaseKingAdoptCommit()))
    correct = [pid for pid in range(n) if pid not in byzantine]
    runtime = SyncRuntime(
        processes,
        init_values=init_values,
        t=t,
        seed=seed,
        stop_pids=correct,
        stop_when="all_done",
        max_exchanges=4,
    )
    result = runtime.run()
    return collect_outcomes(result.trace, correct)


class TestFaultFree:
    @pytest.mark.parametrize("value", [0, 1])
    def test_unanimous_inputs_commit(self, value):
        outcomes = run_ac([value] * 4, t=1)
        assert all(o == (COMMIT, value) for o in outcomes.values())

    def test_clear_majority_commits(self):
        # n - t = 3 of 4 prefer 1: C(1) >= n - t everywhere.
        outcomes = run_ac([1, 1, 1, 0], t=1)
        assert all(o == (COMMIT, 1) for o in outcomes.values())

    def test_balanced_split_adopts_sentinel(self):
        outcomes = run_ac([0, 0, 1, 1], t=1)
        assert all(c is ADOPT for c, _v in outcomes.values())
        assert all(v == NO_PREFERENCE for _c, v in outcomes.values())


class TestWithByzantine:
    STRATEGIES = {
        "silent": lambda: silent_strategy,
        "noise": random_noise_strategy,
        "equivocating": equivocating_strategy,
        "adaptive": anti_phase_king_strategy,
    }

    @pytest.mark.parametrize("name", sorted(STRATEGIES))
    @pytest.mark.parametrize("seed", range(5))
    def test_coherence_holds_for_every_strategy(self, name, seed):
        strategy = self.STRATEGIES[name]()
        inits = [0, 1, 0, 1, 1, 0, 1]
        outcomes = run_ac(inits, t=2, byzantine={2: strategy, 5: strategy}, seed=seed)
        check_ac_round(outcomes)

    @pytest.mark.parametrize("name", sorted(STRATEGIES))
    def test_convergence_despite_byzantine(self, name):
        # All correct processes start with 1: Lemma 2's validity argument
        # forces (commit, 1) at every correct process.
        strategy = self.STRATEGIES[name]()
        inits = [1] * 7
        outcomes = run_ac(inits, t=2, byzantine={0: strategy, 6: strategy})
        assert all(o == (COMMIT, 1) for o in outcomes.values())

    def test_byzantine_minority_cannot_forge_commit_value(self):
        # 4 correct processes prefer 0; 2 Byzantine push 1.  A commit, if
        # any, must be on 0 (1 can never reach n - t = 4 honest-backed
        # counts... the Byzantine two alone cannot cross the > t bar with
        # honest support all on 0 after exchange 1).
        for seed in range(10):
            outcomes = run_ac(
                [0, 0, 0, 0, 1, 1],
                t=2,
                byzantine={4: equivocating_strategy(1, 1), 5: equivocating_strategy(1, 1)},
                seed=seed,
            )
            for confidence, value in outcomes.values():
                if confidence is COMMIT:
                    assert value == 0
