"""A coordinated Byzantine attack on Phase-King's *early* decision rule.

The paper's conciliator (Algorithm 4) returns the king's value to every
adopter, and its validity property only references the king's own input —
which is vacuous when the king is Byzantine.  This file constructs the
concrete consequence: with ``n = 7, t = 2`` and Byzantine pids {0, 1}
(also the first two kings), the adversary

1. makes exactly one correct process (pid 2) see ``D(1) >= n - t`` in round
   1 and *commit* value 1, while the other correct processes only adopt 1;
2. has round 1's Byzantine king hand value 0 to all adopters;
3. lets round 2 run: now four of five correct processes hold 0, so the AC
   *commits 0* — and pid 2, already decided on 1, is forced to decide 0.

Under the paper-literal ``early`` mode this is an agreement violation
(surfaced by the runtime as a double-decide `SimulationError`); under the
classic ``fixed`` mode (decide only after ``t + 1`` rounds) the same attack
is harmless.  This is the repository's executable witness for the caveat
documented in ``repro.algorithms.phase_king`` and DESIGN.md.
"""

import pytest

from repro.algorithms.phase_king import run_phase_king
from repro.core.properties import (
    PropertyViolation,
    check_ac_round,
    check_agreement,
    outcomes_by_round,
)

#: Correct processes and their inputs: pids 2, 3, 4 prefer 1; 5, 6 prefer 0.
INIT_VALUES = [None, None, 1, 1, 1, 0, 0]
CORRECT = [2, 3, 4, 5, 6]


def attack_strategy(king_pid):
    """The coordinated attack as a Byzantine strategy for pid ``king_pid``."""

    def strategy(api, barrier, inbox):
        if barrier == 0:  # round 1, exchange 1: split the correct tallies
            return {2: 1, 3: 1, 4: 1, 5: 0, 6: 0}
        if barrier == 1:  # round 1, exchange 2: only pid 2 reaches n - t
            return {2: 1, 3: 2, 4: 2, 5: 2, 6: 2}
        if barrier == 2:  # round 1, king exchange: the Byzantine king lies
            if api.pid == king_pid:
                return {pid: 0 for pid in range(api.n)}
            return {}
        # Round 2 onward: push 0 everywhere to cement the flipped commit.
        return {pid: 0 for pid in range(api.n)}

    return strategy


def build_byzantine():
    return {0: attack_strategy(0), 1: attack_strategy(1)}


def test_round_one_unfolds_as_designed():
    """In fixed mode, verify the attack produces the intended round-1 split."""
    result = run_phase_king(
        INIT_VALUES, t=2, byzantine=build_byzantine(), mode="fixed", seed=0
    )
    outcomes = outcomes_by_round(result.trace, "ac", correct=CORRECT)
    round1 = outcomes[1]
    from repro.core.confidence import ADOPT, COMMIT

    assert round1[2] == (COMMIT, 1)
    for pid in (3, 4, 5, 6):
        assert round1[pid] == (ADOPT, 1)
    check_ac_round(round1)  # the AC object itself is perfectly coherent


def test_early_mode_agreement_is_broken_by_the_attack():
    """The paper-literal early rule lets the adversary force disagreement.

    Pid 2 decides 1 in round 1; the flipped round 2 commits 0 at every other
    correct process — the run completes with split decisions {2: 1, rest: 0}.
    """
    result = run_phase_king(
        INIT_VALUES, t=2, byzantine=build_byzantine(), mode="early", seed=0
    )
    decisions = {pid: result.decisions[pid] for pid in CORRECT}
    assert decisions[2] == 1
    assert all(decisions[pid] == 0 for pid in (3, 4, 5, 6))
    with pytest.raises(PropertyViolation):
        check_agreement(decisions)


def test_fixed_mode_survives_the_same_attack():
    """The classic t+1-round rule is immune: everyone decides 0 together."""
    result = run_phase_king(
        INIT_VALUES, t=2, byzantine=build_byzantine(), mode="fixed", seed=0
    )
    decisions = {pid: result.decisions[pid] for pid in CORRECT}
    check_agreement(decisions)
    assert set(decisions.values()) == {0}


def test_attack_requires_a_byzantine_king():
    """With the same message pattern but correct kings, early mode is safe:
    the commit-then-flip needs the round-1 king to lie."""
    # Shift the Byzantine pids off the first kings: kings 0 and 1 are now
    # correct, so the round-1 king broadcasts its real value.
    init_values = [1, 0, None, None, 1, 1, 0]
    byzantine = {2: attack_strategy(2), 3: attack_strategy(3)}
    result = run_phase_king(
        init_values, t=2, byzantine=byzantine, mode="early", seed=0
    )
    correct = [0, 1, 4, 5, 6]
    decisions = {pid: result.decisions[pid] for pid in correct}
    check_agreement(decisions)
