"""Focused unit tests of RaftNode behaviours that the end-to-end runs only
exercise incidentally: vote rules, term bookkeeping, commit rule details."""

import pytest

from repro.algorithms.raft import (
    CANDIDATE,
    FOLLOWER,
    LEADER,
    RaftNode,
    run_raft_consensus,
)
from repro.algorithms.raft.log import Entry
from repro.algorithms.raft.messages import (
    AppendEntries,
    AppendEntriesReply,
    RequestVote,
    RequestVoteReply,
)
from repro.algorithms.raft.state_machine import DecideAndStop
from repro.sim.async_runtime import AsyncRuntime
from repro.sim.network import ConstantDelay, NetworkConfig
from repro.sim.ops import Receive, Send
from repro.sim.process import FunctionProcess


def drive(node, script, n=3, seed=0, max_time=500.0):
    """Run ``node`` as pid 0 against a scripted pid-1 peer.

    ``script(api)`` is a generator body for the peer; remaining pids are
    passive sinks.  Returns the run result.
    """

    def sink(api):
        while True:
            yield Receive(count=1)

    processes = [node, FunctionProcess(script)] + [
        FunctionProcess(sink) for _ in range(n - 2)
    ]
    runtime = AsyncRuntime(
        processes,
        init_values=[f"v{i}" for i in range(n)],
        t=(n - 1) // 2,
        seed=seed,
        network=NetworkConfig(delay_model=ConstantDelay(1.0)),
        max_time=max_time,
        stop_when="queue_empty",
    )
    return runtime.run()


class TestVoting:
    def test_grants_one_vote_per_term(self):
        node = RaftNode(election_timeout=(1000.0, 2000.0))
        replies = []

        def first_candidate(api):
            yield Send(0, RequestVote(term=1, candidate_id=1, last_log_index=0, last_log_term=0))
            reply = yield Receive(count=1, predicate=lambda e: isinstance(e.payload, RequestVoteReply))
            replies.append(("first", reply[0].payload))
            # Signal the competing candidate to ask now.
            yield Send(2, "your-turn")

        def second_candidate(api):
            yield Receive(count=1, predicate=lambda e: e.payload == "your-turn")
            yield Send(0, RequestVote(term=1, candidate_id=2, last_log_index=0, last_log_term=0))
            reply = yield Receive(count=1, predicate=lambda e: isinstance(e.payload, RequestVoteReply))
            replies.append(("second", reply[0].payload))

        runtime = AsyncRuntime(
            [node, FunctionProcess(first_candidate), FunctionProcess(second_candidate)],
            init_values=["a", "b", "c"],
            t=1,
            seed=0,
            network=NetworkConfig(delay_model=ConstantDelay(1.0)),
            max_time=500.0,
            stop_when="queue_empty",
        )
        runtime.run()
        outcomes = dict(replies)
        assert outcomes["first"].vote_granted is True
        assert outcomes["second"].vote_granted is False  # already voted this term
        assert node.voted_for == 1

    def test_rejects_stale_term(self):
        node = RaftNode(election_timeout=(1000.0, 2000.0))
        node.current_term = 5
        replies = []

        def peer(api):
            yield Send(0, RequestVote(term=3, candidate_id=1, last_log_index=0, last_log_term=0))
            reply = yield Receive(count=1, predicate=lambda e: isinstance(e.payload, RequestVoteReply))
            replies.append(reply[0].payload)

        drive(node, peer)
        assert replies[0].vote_granted is False
        assert replies[0].term == 5

    def test_rejects_out_of_date_candidate_log(self):
        node = RaftNode(election_timeout=(1000.0, 2000.0))
        node.log.append_new(Entry(3, DecideAndStop("x")))
        node.current_term = 3
        replies = []

        def peer(api):
            yield Send(0, RequestVote(term=4, candidate_id=1, last_log_index=0, last_log_term=0))
            reply = yield Receive(count=1, predicate=lambda e: isinstance(e.payload, RequestVoteReply))
            replies.append(reply[0].payload)

        drive(node, peer)
        assert replies[0].vote_granted is False
        assert node.current_term == 4  # term adopted even when vote denied

    def test_higher_term_message_steps_down_and_updates(self):
        node = RaftNode(election_timeout=(1000.0, 2000.0))

        def peer(api):
            yield Send(0, AppendEntries(term=7, leader_id=1, prev_log_index=0,
                                        prev_log_term=0, entries=(), leader_commit=0))
            yield Receive(count=1, predicate=lambda e: isinstance(e.payload, AppendEntriesReply))

        drive(node, peer)
        assert node.current_term == 7
        assert node.state == FOLLOWER


class TestAppendHandling:
    def test_stale_append_rejected(self):
        node = RaftNode(election_timeout=(1000.0, 2000.0))
        node.current_term = 9
        replies = []

        def peer(api):
            yield Send(0, AppendEntries(term=2, leader_id=1, prev_log_index=0,
                                        prev_log_term=0, entries=(), leader_commit=0))
            reply = yield Receive(count=1, predicate=lambda e: isinstance(e.payload, AppendEntriesReply))
            replies.append(reply[0].payload)

        drive(node, peer)
        assert replies[0].success is False
        assert replies[0].term == 9

    def test_consistency_failure_reports_false(self):
        node = RaftNode(election_timeout=(1000.0, 2000.0))
        replies = []

        def peer(api):
            # prev_log_index=5 but the follower's log is empty.
            yield Send(0, AppendEntries(term=1, leader_id=1, prev_log_index=5,
                                        prev_log_term=1,
                                        entries=(Entry(1, DecideAndStop("x")),),
                                        leader_commit=0))
            reply = yield Receive(count=1, predicate=lambda e: isinstance(e.payload, AppendEntriesReply))
            replies.append(reply[0].payload)

        drive(node, peer)
        assert replies[0].success is False
        assert node.log.last_index == 0

    def test_successful_append_reports_match_index(self):
        node = RaftNode(election_timeout=(1000.0, 2000.0))
        replies = []

        def peer(api):
            yield Send(0, AppendEntries(term=1, leader_id=1, prev_log_index=0,
                                        prev_log_term=0,
                                        entries=(Entry(1, DecideAndStop("x")),
                                                 Entry(1, DecideAndStop("x"))),
                                        leader_commit=0))
            reply = yield Receive(count=1, predicate=lambda e: isinstance(e.payload, AppendEntriesReply))
            replies.append(reply[0].payload)

        drive(node, peer)
        assert replies[0].success is True
        assert replies[0].match_index == 2
        assert node.log.last_index == 2

    def test_commit_index_capped_by_matched_prefix(self):
        node = RaftNode(election_timeout=(1000.0, 2000.0))

        def peer(api):
            # leader_commit far beyond what this message replicates: the
            # follower must only commit what it can verify (index 1).
            yield Send(0, AppendEntries(term=1, leader_id=1, prev_log_index=0,
                                        prev_log_term=0,
                                        entries=(Entry(1, DecideAndStop("x")),),
                                        leader_commit=99))
            yield Receive(count=1, predicate=lambda e: isinstance(e.payload, AppendEntriesReply))

        drive(node, peer)
        assert node.commit_index == 1


class TestClusterSize:
    def test_client_processes_do_not_inflate_the_majority(self):
        """Regression test: with a non-member process on the network and one
        member crashed, the remaining two of three members must still elect
        a leader (majority over the cluster, not over all processes)."""
        from repro.algorithms.raft import LEADER
        from repro.sim.failures import CrashPlan
        from repro.sim.network import UniformDelay

        nodes = [RaftNode(cluster_size=3, propose_on_leadership=False) for _ in range(3)]

        def bystander(api):
            while True:
                yield Receive(count=1)

        runtime = AsyncRuntime(
            nodes + [FunctionProcess(bystander)],
            init_values=[1, 2, 3, None],
            t=1,
            seed=0,
            network=NetworkConfig(delay_model=UniformDelay(0.5, 1.5)),
            max_time=80.0,
            stop_when=lambda rt: any(n.state == LEADER for n in nodes),
        )
        runtime.run()
        crashless_check = any(n.state == LEADER for n in nodes)
        assert crashless_check

        nodes = [RaftNode(cluster_size=3, propose_on_leadership=False) for _ in range(3)]
        runtime = AsyncRuntime(
            nodes + [FunctionProcess(bystander)],
            init_values=[1, 2, 3, None],
            t=1,
            seed=0,
            network=NetworkConfig(delay_model=UniformDelay(0.5, 1.5)),
            crash_plans=[CrashPlan(2, at_time=1.0)],
            max_time=80.0,
            stop_when=lambda rt: any(n.state == LEADER for n in nodes),
        )
        runtime.run()
        assert any(n.state == LEADER for n in nodes[:2])

    def test_cluster_size_validation(self):
        with pytest.raises(ValueError):
            RaftNode(cluster_size=0)


class TestSingleNodeCluster:
    def test_n1_elects_itself_and_decides(self):
        result = run_raft_consensus(["solo"], seed=0)
        assert result.decisions == {0: "solo"}

    def test_durable_state_survives_in_object(self):
        node = RaftNode()
        node.current_term = 4
        node.voted_for = 2
        node.log.append_new(Entry(4, DecideAndStop("v")))
        # run() resets volatile state only.
        gen = node.run(type("Api", (), {
            "pid": 0, "n": 1, "t": 0, "init_value": "v",
            "rng": __import__("random").Random(0), "now": 0.0,
            "majority": lambda self: 1, "quorum": lambda self: 1,
        })())
        next(gen)  # first op (election timer)
        assert node.current_term == 4
        assert node.voted_for == 2
        assert node.log.last_index == 1
        assert node.state == FOLLOWER
        assert node.commit_index == 0
