"""Tests for the decentralized Raft variant (Section 4.3's closing sketch)."""

import pytest

from repro.algorithms.ben_or import ben_or_template_consensus
from repro.algorithms.decentralized_raft import (
    TimerReconciliator,
    decentralized_raft_consensus,
)
from repro.analysis.metrics import rounds_used
from repro.core.properties import (
    check_agreement,
    check_all_rounds,
    check_termination,
    check_validity,
)
from repro.sim.async_runtime import AsyncRuntime
from repro.sim.failures import CrashPlan


def run_dr(init_values, t, seed=0, crash_plans=(), **kwargs):
    n = len(init_values)
    processes = [decentralized_raft_consensus(**kwargs) for _ in range(n)]
    runtime = AsyncRuntime(
        processes,
        init_values=init_values,
        t=t,
        seed=seed,
        crash_plans=crash_plans,
        max_time=5000.0,
    )
    return runtime.run()


class TestConsensus:
    @pytest.mark.parametrize("seed", range(10))
    def test_agreement_validity_termination(self, seed):
        inits = [0, 1, 0, 1, 1]
        result = run_dr(inits, t=2, seed=seed)
        check_agreement(result.decisions)
        check_validity(result.decisions, inits)
        check_termination(result.decisions, range(5))

    def test_unanimous_decides_in_one_round(self):
        from repro.analysis.metrics import decision_rounds

        result = run_dr([1] * 5, t=2, seed=0)
        assert result.decided_value() == 1
        assert all(m == 1 for m in decision_rounds(result.trace).values())

    @pytest.mark.parametrize("seed", range(5))
    def test_crash_tolerated(self, seed):
        inits = [0, 1, 0, 1, 1]
        result = run_dr(
            inits, t=2, seed=seed, crash_plans=[CrashPlan(4, at_time=4.0)]
        )
        check_agreement(result.decisions)
        check_termination(result.decisions, range(4))

    @pytest.mark.parametrize("seed", range(10))
    def test_vac_rounds_coherent(self, seed):
        result = run_dr([0, 1, 0, 1, 1], t=2, seed=seed)
        check_all_rounds(result.trace, "vac")


class TestTimerMechanism:
    def test_rounds_beat_coin_flipping_on_balanced_inputs(self):
        """The paper's point: the timer reconciliator converges faster than
        coins because a single first riser drags everyone to one value.
        Compare mean rounds over a seed battery on a balanced 3-3 split."""
        inits = [0, 0, 0, 1, 1, 1]
        seeds = range(15)
        timer_rounds = []
        coin_rounds = []
        for seed in seeds:
            timer_rounds.append(rounds_used(run_dr(inits, t=2, seed=seed).trace))
            processes = [ben_or_template_consensus() for _ in range(6)]
            runtime = AsyncRuntime(
                processes, init_values=inits, t=2, seed=seed, max_time=5000.0
            )
            coin_rounds.append(rounds_used(runtime.run().trace))
        assert sum(timer_rounds) <= sum(coin_rounds)

    def test_leader_or_follow_annotations_present(self):
        # On a balanced split someone must vacillate, so the reconciliator
        # runs and records either a lead or a follow.
        result = run_dr([0, 0, 1, 1], t=1, seed=2)
        leads = result.trace.annotations("timer_lead")
        follows = result.trace.annotations("timer_follow")
        assert leads or follows

    def test_timeout_range_validation(self):
        with pytest.raises(ValueError):
            TimerReconciliator((0.0, 5.0))
        with pytest.raises(ValueError):
            TimerReconciliator((5.0, 1.0))
