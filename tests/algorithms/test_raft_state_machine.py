"""Unit tests for the Raft state machines."""

import pytest

from repro.algorithms.raft.state_machine import (
    DecideAndStop,
    DecideStateMachine,
    KeyValueStateMachine,
    Put,
)


class TestDecideStateMachine:
    def test_first_command_decides(self):
        machine = DecideStateMachine()
        assert machine.decision is None
        machine.apply(1, DecideAndStop("v"))
        assert machine.decision == "v"

    def test_later_commands_ignored(self):
        machine = DecideStateMachine()
        machine.apply(1, DecideAndStop("first"))
        machine.apply(2, DecideAndStop("second"))
        assert machine.decision == "first"

    def test_apply_returns_current_decision(self):
        machine = DecideStateMachine()
        assert machine.apply(1, DecideAndStop("v")) == "v"
        assert machine.apply(2, DecideAndStop("w")) == "v"

    def test_wrong_command_type_rejected(self):
        machine = DecideStateMachine()
        with pytest.raises(TypeError):
            machine.apply(1, Put("k", "v"))

    def test_reset_clears_decision(self):
        machine = DecideStateMachine()
        machine.apply(1, DecideAndStop("v"))
        machine.reset()
        assert machine.decision is None


class TestKeyValueStateMachine:
    def test_puts_build_the_map(self):
        machine = KeyValueStateMachine()
        machine.apply(1, Put("a", 1))
        machine.apply(2, Put("b", 2))
        machine.apply(3, Put("a", 3))
        assert machine.data == {"a": 3, "b": 2}
        assert machine.applied_count == 3

    def test_wrong_command_type_rejected(self):
        machine = KeyValueStateMachine()
        with pytest.raises(TypeError):
            machine.apply(1, DecideAndStop("x"))

    def test_reset(self):
        machine = KeyValueStateMachine()
        machine.apply(1, Put("a", 1))
        machine.reset()
        assert machine.data == {}
        assert machine.applied_count == 0
