"""Tests for Phase-Queen: the framework's second synchronous instantiation."""

import pytest

from repro.algorithms.phase_queen import (
    MonolithicPhaseQueen,
    PhaseQueenAdoptCommit,
    run_phase_queen,
)
from repro.core.confidence import ADOPT, COMMIT
from repro.core.properties import (
    check_ac_round,
    check_agreement,
    check_termination,
    check_validity,
)
from repro.sim.failures import (
    ByzantineProcess,
    anti_phase_king_strategy,
    equivocating_strategy,
    random_noise_strategy,
    silent_strategy,
)
from repro.sim.sync_runtime import SyncRuntime

from tests.helpers import OneShotDetector, collect_outcomes

STRATEGIES = {
    "silent": lambda: silent_strategy,
    "noise": random_noise_strategy,
    "equivocating": equivocating_strategy,
    "adaptive": anti_phase_king_strategy,
}


def run_ac(init_values, t, byzantine=None, seed=0):
    n = len(init_values)
    byzantine = byzantine or {}
    processes = [
        ByzantineProcess(byzantine[pid])
        if pid in byzantine
        else OneShotDetector(PhaseQueenAdoptCommit())
        for pid in range(n)
    ]
    correct = [pid for pid in range(n) if pid not in byzantine]
    runtime = SyncRuntime(
        processes,
        init_values=init_values,
        t=t,
        seed=seed,
        stop_pids=correct,
        stop_when="all_done",
        max_exchanges=3,
    )
    result = runtime.run()
    return collect_outcomes(result.trace, correct)


class TestAdoptCommitObject:
    @pytest.mark.parametrize("value", [0, 1])
    def test_unanimous_inputs_commit(self, value):
        outcomes = run_ac([value] * 5, t=1)
        assert all(o == (COMMIT, value) for o in outcomes.values())

    def test_balanced_split_adopts(self):
        outcomes = run_ac([0, 0, 1, 1], t=0)
        assert all(c is ADOPT for c, _v in outcomes.values())

    @pytest.mark.parametrize("name", sorted(STRATEGIES))
    @pytest.mark.parametrize("seed", range(5))
    def test_coherence_under_byzantine(self, name, seed):
        strategy = STRATEGIES[name]()
        inits = [0, 1, 0, 1, 1, 0, 1, 1, 0]  # n = 9, t = 2: 4t < n
        outcomes = run_ac(inits, t=2, byzantine={3: strategy, 7: strategy}, seed=seed)
        check_ac_round(outcomes)

    @pytest.mark.parametrize("name", sorted(STRATEGIES))
    def test_convergence_despite_byzantine(self, name):
        strategy = STRATEGIES[name]()
        inits = [1] * 9
        outcomes = run_ac(inits, t=2, byzantine={0: strategy, 8: strategy})
        assert all(o == (COMMIT, 1) for o in outcomes.values())


class TestConsensus:
    @pytest.mark.parametrize("mode", ["fixed", "early"])
    def test_unanimous(self, mode):
        result = run_phase_queen([1] * 5, t=1, mode=mode)
        check_agreement(result.decisions)
        assert result.decided_value() == 1

    @pytest.mark.parametrize("name", sorted(STRATEGIES))
    @pytest.mark.parametrize("seed", range(4))
    def test_fixed_mode_safe_under_byzantine(self, name, seed):
        strategy_factory = STRATEGIES[name]
        inits = [0, 1, 0, 1, 1, 0, 1, 1, 0]
        byzantine = {2: strategy_factory(), 6: strategy_factory()}
        result = run_phase_queen(
            inits, t=2, byzantine=byzantine, mode="fixed", seed=seed
        )
        correct = [p for p in range(9) if p not in byzantine]
        decisions = {p: result.decisions[p] for p in correct}
        check_agreement(decisions)
        check_termination(decisions, correct)
        assert all(v in (0, 1) for v in decisions.values())

    def test_exchange_budget(self):
        # Fixed mode: exactly t + 1 rounds of 2 exchanges each.
        result = run_phase_queen([0, 1, 0, 1, 1], t=1, mode="fixed")
        assert result.exchanges == 4

    def test_resilience_precondition(self):
        with pytest.raises(ValueError):
            run_phase_queen([0, 1, 0, 1], t=1)  # needs 4t < n

    def test_cheaper_than_phase_king_per_round(self):
        from repro.algorithms.phase_king import run_phase_king

        inits = [0, 1, 0, 1, 1, 0, 1, 1, 0]
        queen = run_phase_queen(inits, t=2, mode="fixed", seed=0)
        king = run_phase_king(inits, t=2, mode="fixed", seed=0)
        assert queen.exchanges < king.exchanges
        assert queen.trace.message_count() < king.trace.message_count()


class TestMonolithicEquivalence:
    @pytest.mark.parametrize("seed", range(5))
    def test_decomposed_equals_monolithic(self, seed):
        inits = [0, 1, 1, 0, 1, 0, 0, 1, 1]
        decomposed = run_phase_queen(inits, t=2, mode="fixed", seed=seed)
        monolithic = SyncRuntime(
            [MonolithicPhaseQueen(2) for _ in range(9)],
            init_values=inits,
            t=2,
            seed=seed,
            stop_when="all_decided",
            max_exchanges=8,
        ).run()
        assert decomposed.decisions == monolithic.decisions
        assert decomposed.trace.message_count() == monolithic.trace.message_count()
