"""Tests for single-decree Paxos and its VAC view."""

import pytest

from repro.algorithms.paxos import PaxosNode, run_paxos
from repro.algorithms.raft.vac import check_raft_vac
from repro.core.properties import (
    check_agreement,
    check_termination,
    check_validity,
)
from repro.sim.failures import CrashPlan
from repro.sim.network import NetworkConfig, Partition, UniformDelay


class TestBasicConsensus:
    @pytest.mark.parametrize("seed", range(10))
    def test_agreement_validity_termination(self, seed):
        inits = ["a", "b", "c", "d", "e"]
        result = run_paxos(inits, seed=seed)
        check_agreement(result.decisions)
        check_validity(result.decisions, inits)
        check_termination(result.decisions, range(5))

    @pytest.mark.parametrize("n", [1, 2, 3, 5, 7])
    def test_cluster_sizes(self, n):
        inits = list(range(n))
        result = run_paxos(inits, seed=4)
        check_agreement(result.decisions)
        check_termination(result.decisions, range(n))

    @pytest.mark.parametrize("seed", range(10))
    def test_per_ballot_vac_coherence(self, seed):
        result = run_paxos([1, 2, 3, 4, 5], seed=seed)
        assert check_raft_vac(result.trace) >= 1

    def test_decision_is_some_input(self):
        result = run_paxos(["x", "y", "z"], seed=2)
        assert result.decided_value() in ("x", "y", "z")


class TestUnderFailures:
    @pytest.mark.parametrize("seed", range(6))
    def test_minority_crashes_tolerated(self, seed):
        inits = [1, 2, 3, 4, 5]
        result = run_paxos(
            inits,
            seed=seed,
            crash_plans=[
                CrashPlan(0, at_time=5.0),
                CrashPlan(1, at_time=9.0),
            ],
        )
        live = [2, 3, 4]
        check_agreement(result.decisions)
        check_termination(result.decisions, live)
        check_validity(result.decisions, inits)

    @pytest.mark.parametrize("seed", range(4))
    def test_crash_restart_rejoins(self, seed):
        result = run_paxos(
            [1, 2, 3],
            seed=seed,
            crash_plans=[CrashPlan(1, at_time=4.0, restart_at=40.0)],
        )
        check_agreement(result.decisions)

    @pytest.mark.parametrize("seed", range(4))
    def test_partition_heals(self, seed):
        network = NetworkConfig(
            delay_model=UniformDelay(0.5, 1.5),
            partitions=[Partition(3.0, 60.0, [[0, 1], [2, 3, 4]])],
        )
        result = run_paxos([1, 2, 3, 4, 5], seed=seed, network=network)
        check_agreement(result.decisions)
        check_termination(result.decisions, range(5))

    def test_minority_side_cannot_decide_alone(self):
        network = NetworkConfig(
            delay_model=UniformDelay(0.5, 1.5),
            partitions=[Partition(0.0, 10_000.0, [[0, 1], [2, 3, 4]])],
        )
        result = run_paxos([1, 2, 3, 4, 5], seed=0, network=network, max_time=400.0)
        assert all(pid in (2, 3, 4) for pid in result.decisions)
        check_agreement(result.decisions)

    @pytest.mark.parametrize("seed", range(4))
    def test_lossy_network(self, seed):
        network = NetworkConfig(delay_model=UniformDelay(0.5, 1.5), drop_rate=0.15)
        result = run_paxos([1, 2, 3], seed=seed, network=network)
        check_agreement(result.decisions)
        check_termination(result.decisions, range(3))


class TestDuelingProposers:
    @pytest.mark.parametrize("seed", range(6))
    def test_contention_resolves(self, seed):
        # Tight identical retry ranges maximize dueling; randomized draws
        # must still separate the proposers eventually.
        result = run_paxos(
            [1, 2, 3, 4, 5],
            seed=seed,
            retry_timeout=(4.0, 6.0),
            max_time=5_000.0,
        )
        check_agreement(result.decisions)
        check_termination(result.decisions, range(5))

    def test_chosen_value_survives_later_ballots(self):
        """Paxos' core invariant, observed: once any ballot commits, every
        later ballot's adopt annotations carry the same value."""
        for seed in range(8):
            result = run_paxos([1, 2, 3, 4, 5], seed=seed, retry_timeout=(4.0, 6.0))
            annotations = result.trace.annotations("vac")
            from repro.core.confidence import ADOPT, COMMIT

            commit_events = [
                (ballot, value)
                for _pid, _t, (ballot, conf, value) in annotations
                if conf is COMMIT
            ]
            if not commit_events:
                continue
            first_ballot, chosen = min(commit_events)
            for _pid, _t, (ballot, conf, value) in annotations:
                if conf is ADOPT and ballot > first_ballot:
                    assert value == chosen


class TestAcceptorRules:
    def make_api(self, pid=0, n=3):
        import random

        from repro.sim.process import ProcessAPI

        return ProcessAPI(pid, n, 1, f"v{pid}", random.Random(0))

    def drain(self, gen):
        return list(gen)

    def test_promise_is_monotone(self):
        from repro.algorithms.paxos.messages import Nack, Prepare, Promise

        node = PaxosNode()
        api = self.make_api()
        ops = self.drain(node._on_prepare(api, Prepare((5, 1)), 1))
        assert isinstance(ops[0].payload, Promise)
        ops = self.drain(node._on_prepare(api, Prepare((3, 2)), 2))
        assert isinstance(ops[0].payload, Nack)
        assert node.promised == (5, 1)

    def test_accept_below_promise_nacked(self):
        from repro.algorithms.paxos.messages import Accept, Nack, Prepare

        node = PaxosNode()
        api = self.make_api()
        self.drain(node._on_prepare(api, Prepare((5, 1)), 1))
        ops = self.drain(node._on_accept(api, Accept((4, 2), "v"), 2))
        assert isinstance(ops[0].payload, Nack)
        assert node.accepted_ballot is None

    def test_accept_at_promise_succeeds_and_broadcasts(self):
        from repro.algorithms.paxos.messages import Accept, Accepted, Prepare
        from repro.sim.ops import Broadcast

        node = PaxosNode()
        api = self.make_api()
        self.drain(node._on_prepare(api, Prepare((5, 1)), 1))
        ops = self.drain(node._on_accept(api, Accept((5, 1), "v"), 1))
        broadcasts = [op for op in ops if isinstance(op, Broadcast)]
        assert broadcasts and isinstance(broadcasts[0].payload, Accepted)
        assert node.accepted_value == "v"

    def test_retry_timeout_validation(self):
        with pytest.raises(ValueError):
            PaxosNode(retry_timeout=(0.0, 5.0))
        with pytest.raises(ValueError):
            PaxosNode(cluster_size=0)
