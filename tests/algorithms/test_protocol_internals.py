"""Targeted unit tests for protocol branches the end-to-end runs exercise
only incidentally: Raft's NextIndex backoff, Paxos' value-choice rule, and
Ben-Or's crash-model boundary."""

import random

import pytest

from repro.sim.ops import Broadcast, Send
from repro.sim.process import ProcessAPI


def make_api(pid=0, n=3, t=1):
    return ProcessAPI(pid, n, t, f"v{pid}", random.Random(0))


def drain(gen):
    return list(gen)


class TestRaftNextIndexRepair:
    def make_leader(self, api, terms):
        from repro.algorithms.raft import RaftNode
        from repro.algorithms.raft.log import Entry
        from repro.algorithms.raft.node import LEADER
        from repro.algorithms.raft.state_machine import DecideAndStop

        node = RaftNode()
        for term in terms:
            node.log.append_new(Entry(term, DecideAndStop("x")))
        node.current_term = terms[-1]
        node.state = LEADER
        node.next_index = {1: node.log.last_index + 1, 2: node.log.last_index + 1}
        node.match_index = {1: 0, 2: 0}
        return node

    def test_false_ack_decrements_and_resends(self):
        from repro.algorithms.raft.messages import AppendEntries, AppendEntriesReply

        api = make_api()
        node = self.make_leader(api, [1, 1, 2])
        ops = drain(
            node._on_append_entries_reply(
                api, AppendEntriesReply(term=2, success=False, follower_id=1)
            )
        )
        assert node.next_index[1] == 3
        sends = [op for op in ops if isinstance(op, Send)]
        assert sends and isinstance(sends[0].payload, AppendEntries)
        resend = sends[0].payload
        assert resend.prev_log_index == 2
        assert len(resend.entries) == 1

    def test_repeated_false_acks_walk_back_to_the_start(self):
        from repro.algorithms.raft.messages import AppendEntries, AppendEntriesReply

        api = make_api()
        node = self.make_leader(api, [1, 1, 2])
        for expected_prev in (2, 1, 0):
            ops = drain(
                node._on_append_entries_reply(
                    api, AppendEntriesReply(term=2, success=False, follower_id=1)
                )
            )
            resend = next(
                op.payload for op in ops if isinstance(op, Send)
            )
            assert resend.prev_log_index == expected_prev
        # The floor is next_index = 1 (prev 0, full log).
        ops = drain(
            node._on_append_entries_reply(
                api, AppendEntriesReply(term=2, success=False, follower_id=1)
            )
        )
        resend = next(op.payload for op in ops if isinstance(op, Send))
        assert resend.prev_log_index == 0
        assert len(resend.entries) == 3

    def test_success_updates_match_and_advances_commit(self):
        from repro.algorithms.raft.messages import AppendEntriesReply

        api = make_api()
        node = self.make_leader(api, [1, 2, 2])
        node.commit_index = 0
        node.last_applied = 0
        drain(
            node._on_append_entries_reply(
                api,
                AppendEntriesReply(term=2, success=True, follower_id=1, match_index=3),
            )
        )
        assert node.match_index[1] == 3
        assert node.next_index[1] == 4
        # Majority (leader + follower 1) matches index 3 with a current-term
        # entry: the commit rule fires.
        assert node.commit_index == 3

    def test_old_term_entries_do_not_commit_by_counting(self):
        """The log[N].term == currentTerm guard: a leader of term 3 must not
        commit term-2 entries by replication count alone."""
        from repro.algorithms.raft.messages import AppendEntriesReply

        api = make_api()
        node = self.make_leader(api, [1, 2, 2])
        node.current_term = 3  # re-elected later, no term-3 entry yet
        drain(
            node._on_append_entries_reply(
                api,
                AppendEntriesReply(term=3, success=True, follower_id=1, match_index=3),
            )
        )
        assert node.commit_index == 0


class TestPaxosValueChoice:
    def prime_proposer(self, api, ballot):
        from repro.algorithms.paxos import PaxosNode

        node = PaxosNode()
        node._proposing = ballot
        node._promises = {}
        return node

    def test_highest_accepted_ballot_wins(self):
        from repro.algorithms.paxos.messages import Accept, Promise

        api = make_api(pid=0, n=3)
        ballot = (5, 0)
        node = self.prime_proposer(api, ballot)
        drain(node._on_promise(api, Promise(ballot, (2, 1), "older", voter=1)))
        ops = drain(node._on_promise(api, Promise(ballot, (3, 2), "newer", voter=2)))
        accepts = [
            op.payload
            for op in ops
            if isinstance(op, Broadcast) and isinstance(op.payload, Accept)
        ]
        assert accepts and accepts[0].value == "newer"

    def test_own_value_used_when_no_promise_carries_one(self):
        from repro.algorithms.paxos.messages import Accept, Promise

        api = make_api(pid=0, n=3)
        ballot = (5, 0)
        node = self.prime_proposer(api, ballot)
        drain(node._on_promise(api, Promise(ballot, None, None, voter=1)))
        ops = drain(node._on_promise(api, Promise(ballot, None, None, voter=2)))
        accepts = [
            op.payload
            for op in ops
            if isinstance(op, Broadcast) and isinstance(op.payload, Accept)
        ]
        assert accepts and accepts[0].value == api.init_value

    def test_promises_for_other_ballots_ignored(self):
        from repro.algorithms.paxos.messages import Promise

        api = make_api(pid=0, n=3)
        node = self.prime_proposer(api, (5, 0))
        ops = drain(node._on_promise(api, Promise((4, 0), None, None, voter=1)))
        assert ops == []
        assert node._promises == {}

    def test_extra_promises_beyond_majority_do_not_repropose(self):
        from repro.algorithms.paxos.messages import Promise

        api = make_api(pid=0, n=3)
        ballot = (5, 0)
        node = self.prime_proposer(api, ballot)
        drain(node._on_promise(api, Promise(ballot, None, None, voter=1)))
        drain(node._on_promise(api, Promise(ballot, None, None, voter=2)))
        late = drain(node._on_promise(api, Promise(ballot, None, None, voter=0)))
        assert not any(isinstance(op, Broadcast) for op in late)


class TestBenOrModelBoundary:
    def test_distinct_ratified_values_are_detected(self):
        """Two different ratified values cannot occur under crash faults;
        if a Byzantine-ish peer forges them anyway, the VAC fails loudly
        rather than returning an incoherent outcome — documenting the
        algorithm's crash-only model boundary."""
        from repro.algorithms.ben_or.messages import Ratify, Report
        from repro.algorithms.ben_or.vac import BenOrVac
        from repro.sim.async_runtime import AsyncRuntime
        from repro.sim.ops import Receive
        from repro.sim.process import FunctionProcess

        from tests.helpers import OneShotDetector

        def forger(api):
            # Participate in exchange 1 honestly (value 0, which the victim
            # will see as the majority and ratify), then forge a
            # ratification of the *other* value.
            yield Send(0, Report(1, 0))
            yield Send(0, Ratify(1, 1))
            while True:
                yield Receive(count=1)

        def silent(api):
            # Sends nothing: the victim's ratify quorum must pair its own
            # ratification (of 0) with the forged one (of 1).
            while True:
                yield Receive(count=1)

        victim = OneShotDetector(BenOrVac())
        runtime = AsyncRuntime(
            [victim, FunctionProcess(forger), FunctionProcess(silent)],
            init_values=[0, 0, 0],
            t=1,
            seed=0,
            stop_when="all_halted",
            max_time=100.0,
        )
        with pytest.raises(AssertionError, match="distinct ratified values"):
            runtime.run()
