#!/usr/bin/env python3
"""Quickstart: reach consensus with the object-oriented template.

Runs the paper's Algorithm 1 — the generic consensus template — with
Ben-Or's vacillate-adopt-commit object and the coin-flip reconciliator
(paper Algorithms 5 and 6) over the asynchronous message-passing simulator,
with one process crashing mid-run.

Run:  python examples/quickstart.py
"""

from repro import AsyncRuntime, CrashPlan, ben_or_template_consensus
from repro.analysis.metrics import decision_rounds
from repro.core.properties import check_agreement, check_validity


def main() -> None:
    n, t = 5, 2
    init_values = [0, 1, 0, 1, 1]

    processes = [ben_or_template_consensus() for _ in range(n)]
    runtime = AsyncRuntime(
        processes,
        init_values=init_values,
        t=t,
        seed=42,
        crash_plans=[CrashPlan(pid=4, at_time=3.0)],  # one crash, within budget
    )
    result = runtime.run()

    print(f"inputs:        {init_values}")
    print(f"decisions:     {result.decisions}")
    print(f"decided value: {result.decided_value()}")
    print(f"rounds:        {decision_rounds(result.trace)}")
    print(f"virtual time:  {result.final_time:.2f}")
    print(f"messages sent: {result.trace.message_count()}")
    print(f"crashed pids:  {result.trace.crashed_pids()}")

    # The Section 2 properties, machine-checked on the recorded trace:
    check_agreement(result.decisions)
    check_validity(result.decisions, init_values)
    print("agreement + validity: OK")


if __name__ == "__main__":
    main()
