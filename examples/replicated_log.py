#!/usr/bin/env python3
"""A replicated key-value store on the full Raft substrate.

This drives Raft as the paper's reference [6] intends — general log
replication, not just one-shot consensus: a client proposes Put commands, a
leader replicates them, a follower crashes and restarts mid-stream, and the
NextIndex repair loop backfills its log.  At the end all three state
machines hold the same map.

Run:  python examples/replicated_log.py
"""

from repro.algorithms.raft import ClientPropose, Put, RaftNode
from repro.algorithms.raft.state_machine import KeyValueStateMachine
from repro.sim.async_runtime import AsyncRuntime
from repro.sim.failures import CrashPlan
from repro.sim.network import NetworkConfig, UniformDelay
from repro.sim.ops import Broadcast, Receive, SetTimer, TimerFired
from repro.sim.process import FunctionProcess

COMMANDS = [
    Put("alice", 100),
    Put("bob", 250),
    Put("carol", 75),
    Put("alice", 130),  # overwrite
]


def client(api):
    """Rebroadcast all proposals every 8 time units until the run ends."""
    yield SetTimer(5.0, "tick")
    while True:
        yield Receive(count=1, predicate=lambda e: isinstance(e.payload, TimerFired))
        for i, command in enumerate(COMMANDS):
            yield Broadcast(ClientPropose(("client", i), command), include_self=False)
        yield SetTimer(8.0, "tick")


def main() -> None:
    nodes = [
        RaftNode(
            state_machine_factory=KeyValueStateMachine,
            propose_on_leadership=False,
            cluster_size=3,  # the client (pid 3) is not a Raft member
        )
        for _ in range(3)
    ]

    def all_caught_up(runtime):
        if runtime.pending_restarts:
            return False  # let the crashed follower rejoin and catch up
        live = [n for pid, n in enumerate(nodes) if runtime.is_alive(pid)]
        return bool(live) and all(
            node.machine.applied_count >= len(COMMANDS) for node in live
        )

    runtime = AsyncRuntime(
        nodes + [FunctionProcess(client)],
        t=1,
        network=NetworkConfig(delay_model=UniformDelay(0.5, 1.5)),
        seed=11,
        crash_plans=[CrashPlan(pid=2, at_time=12.0, restart_at=55.0)],
        max_time=600.0,
        stop_when=all_caught_up,
    )
    result = runtime.run()

    print(f"run finished at virtual time {result.final_time:.1f} "
          f"({result.events_processed} events)\n")
    for pid, node in enumerate(nodes):
        entries = [(e.term, e.command.key, e.command.value) for e in node.log.as_list()]
        print(f"node {pid} [{node.state:9s}] term={node.current_term} "
              f"commit={node.commit_index}")
        print(f"  log: {entries}")
        print(f"  kv : {node.machine.data}")
    maps = [node.machine.data for node in nodes]
    assert all(m == maps[0] for m in maps), "state machines diverged!"
    print("\nall state machines identical: OK")
    print(f"final map: {maps[0]}")


if __name__ == "__main__":
    main()
