#!/usr/bin/env python3
"""Byzantine agreement with Phase-King decomposed into AC + conciliator.

The scenario the paper's Section 4.1 motivates: a synchronous cluster where
up to t < n/3 members actively lie — here, two equivocators that tell each
half of the network a different value.  Phase-King still drives everyone to
one decision within t + 1 king rounds.

The second half of the demo reproduces the library's adversarial finding:
the paper-literal *early* decision rule (decide on commit) is breakable by
a coordinated attack through a Byzantine king, while the classic fixed-round
rule survives it.  See ``tests/algorithms/test_phase_king_adversarial.py``
and EXPERIMENTS.md (E2) for the full analysis.

Run:  python examples/byzantine_agreement.py
"""

from repro import run_phase_king
from repro.core.properties import PropertyViolation, check_agreement
from repro.sim.failures import equivocating_strategy


def standard_run() -> None:
    n, t = 7, 2
    init_values = [0, 1, 0, 1, 1, 0, 1]
    byzantine = {2: equivocating_strategy(), 5: equivocating_strategy()}

    result = run_phase_king(
        init_values, t=t, byzantine=byzantine, mode="fixed", seed=7
    )
    correct = [pid for pid in range(n) if pid not in byzantine]
    decisions = {pid: result.decisions[pid] for pid in correct}

    print("--- Phase-King vs two equivocating Byzantine processes ---")
    print(f"inputs (correct): {[init_values[p] for p in correct]}")
    print(f"decisions:        {decisions}")
    print(f"exchanges used:   {result.exchanges}  (bound: 3(t+1) = {3 * (t + 1)})")
    check_agreement(decisions)
    print("agreement: OK\n")


def adversarial_run() -> None:
    # The coordinated attack: Byzantine pids 0 and 1 are also the first two
    # kings.  Round 1: make only pid 2 commit value 1; the Byzantine king
    # then hands 0 to all adopters, and round 2 commits 0.
    init_values = [None, None, 1, 1, 1, 0, 0]

    def attack(king_pid):
        def strategy(api, barrier, inbox):
            if barrier == 0:
                return {2: 1, 3: 1, 4: 1, 5: 0, 6: 0}
            if barrier == 1:
                return {2: 1, 3: 2, 4: 2, 5: 2, 6: 2}
            if barrier == 2:
                return {p: 0 for p in range(api.n)} if api.pid == king_pid else {}
            return {p: 0 for p in range(api.n)}

        return strategy

    print("--- the early-decide attack (paper-literal Algorithm 2 + 4) ---")
    for mode in ("early", "fixed"):
        result = run_phase_king(
            init_values,
            t=2,
            byzantine={0: attack(0), 1: attack(1)},
            mode=mode,
            seed=0,
        )
        decisions = {pid: result.decisions[pid] for pid in (2, 3, 4, 5, 6)}
        try:
            check_agreement(decisions)
            verdict = "agreement holds"
        except PropertyViolation:
            verdict = "AGREEMENT VIOLATED"
        print(f"mode={mode:5s}  decisions={decisions}  -> {verdict}")


if __name__ == "__main__":
    standard_run()
    adversarial_run()
