#!/usr/bin/env python3
"""Paxos and Raft, side by side, through the framework's lens.

Both algorithms break asynchronous stalemates the same way — a randomized
timer opens a new attempt (a ballot / a term) — and both satisfy the VAC
coherence conditions per attempt.  Their costs differ sharply though: a
Raft leader amortizes its election over the whole decision, while Paxos
pays a prepare round trip per ballot.  This demo runs both on the same
cluster size and seed battery and prints the comparison, then shows one
Paxos run's per-ballot VAC table.

Run:  python examples/paxos_vs_raft.py
"""

from repro import run_paxos, run_raft_consensus
from repro.algorithms.raft.vac import check_raft_vac
from repro.analysis.experiments import format_table, summarize
from repro.analysis.report import round_table
from repro.core.properties import check_agreement

SEEDS = range(12)
INPUTS = [10, 20, 30, 40, 50]


def battery(run):
    times, messages = [], []
    for seed in SEEDS:
        result = run(INPUTS, seed=seed)
        check_agreement(result.decisions)
        check_raft_vac(result.trace)  # per-term / per-ballot coherence
        times.append(result.final_time)
        messages.append(result.trace.message_count())
    return summarize(times), summarize(messages)


def main() -> None:
    raft_time, raft_messages = battery(run_raft_consensus)
    paxos_time, paxos_messages = battery(run_paxos)
    print(format_table(
        ["algorithm", "vtime (mean±ci95)", "messages (mean)"],
        [
            ["Raft", f"{raft_time.mean:.0f}±{raft_time.ci95:.0f}",
             f"{raft_messages.mean:.0f}"],
            ["Paxos", f"{paxos_time.mean:.0f}±{paxos_time.ci95:.0f}",
             f"{paxos_messages.mean:.0f}"],
        ],
    ))
    print()
    result = run_paxos(INPUTS, seed=3)
    print("one Paxos run, per-ballot VAC outcomes "
          "(rounds are ballots (counter, proposer)):")
    print(round_table(result.trace, "vac"))
    print(f"\ndecided: {result.decided_value()}")


if __name__ == "__main__":
    main()
