#!/usr/bin/env python3
"""Aspnes' framework [2] in its native habitat: wait-free shared memory.

Runs the AC + conciliator template (the paper's Algorithm 2) over atomic
registers: a Gafni-style adopt-commit detects agreement, and a
probabilistic-write conciliator nudges the system toward it.  The demo runs
the same inputs under three schedulers — random (oblivious adversary),
round-robin, and a hostile alternator — and shows the per-round object
outcomes.

Run:  python examples/shared_memory_consensus.py
"""

from repro.core.properties import check_agreement, outcomes_by_round
from repro.memory import run_shared_memory_consensus


def hostile(step, runnable, rng):
    """Alternate the extremes: maximizes interleaving churn."""
    return runnable[0] if step % 2 == 0 else runnable[-1]


def main() -> None:
    init_values = [0, 1, 1, 0, 1]
    for name, policy in (
        ("random (oblivious)", "random"),
        ("round-robin", "round_robin"),
        ("hostile alternator", hostile),
    ):
        result = run_shared_memory_consensus(init_values, seed=9, policy=policy)
        check_agreement(result.decisions)
        rounds = outcomes_by_round(result.trace, "ac")
        print(f"--- scheduler: {name} ---")
        print(f"decisions: {result.decisions}   steps: {result.steps}")
        for round_no in sorted(rounds):
            letters = {
                pid: f"{conf.letter}:{value}"
                for pid, (conf, value) in sorted(rounds[round_no].items())
            }
            print(f"  round {round_no}: {letters}")
        print()


if __name__ == "__main__":
    main()
