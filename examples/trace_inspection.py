#!/usr/bin/env python3
"""Inspecting an execution: per-round outcomes and lifecycle lanes.

Every run records a full trace; this example shows the built-in renderings
— the per-round VAC outcome table and the per-process ASCII event lanes —
on a decentralized-Raft run with a crash and a restart.

Run:  python examples/trace_inspection.py
"""

from repro import AsyncRuntime, CrashPlan
from repro.algorithms.decentralized_raft import decentralized_raft_consensus
from repro.analysis.report import describe_run, event_lanes, round_table


def main() -> None:
    n, t = 5, 2
    init_values = [0, 1, 0, 1, 1]
    processes = [decentralized_raft_consensus() for _ in range(n)]
    runtime = AsyncRuntime(
        processes,
        init_values=init_values,
        t=t,
        seed=5,
        crash_plans=[CrashPlan(pid=1, at_time=4.0, restart_at=30.0)],
        max_time=5_000.0,
    )
    result = runtime.run()

    print("summary:", describe_run(result.trace))
    print()
    print("per-round VAC outcomes (V vacillate / A adopt / C commit):")
    print(round_table(result.trace))
    print()
    print("lifecycle lanes over virtual time:")
    print(event_lanes(result.trace, width=60))


if __name__ == "__main__":
    main()
