#!/usr/bin/env python3
"""Build your own framework objects and drop them into the template.

The paper's point is that consensus = agreement detector + mixer.  This
example writes both from scratch — a *strict-echo* VAC that only commits on
a fully unanimous quorum of echoes (more conservative than Ben-Or's
``> t``), and a *leaning coin* reconciliator with a globally agreed bias —
and runs them through the unmodified Algorithm 1 template.  The library's
property checkers then validate the homemade objects on the recorded trace.

Why the VAC needs two exchanges: with a single exchange, one process can
observe a unanimous quorum while another's quorum is mixed, so a commit
could coexist with a vacillate — violating coherence over adopt & commit.
(The library's test suite contains exactly this counterexample.)  The
second, "echo" exchange is what makes the knowledge transferable: a commit
backed by ``n - t`` echoes intersects every other quorum in at least
``n - 2t >= 1`` echoes, so nobody can vacillate.

Run:  python examples/build_your_own_object.py
"""

from collections import Counter

from repro import AsyncRuntime, VacTemplateConsensus
from repro.core.confidence import ADOPT, COMMIT, VACILLATE
from repro.core.objects import ReconciliatorObject, VacillateAdoptCommitObject
from repro.core.properties import check_agreement, check_all_rounds
from repro.sim.ops import Annotate, Broadcast, Receive


class StrictEchoVac(VacillateAdoptCommitObject):
    """A two-exchange VAC with a stricter commit rule than Ben-Or's.

    Exchange 1: report your value; a value seen in more than ``n/2`` of the
    whole system is *echoed* in exchange 2 (otherwise echo nothing).

    Classification over ``n - t`` received exchange-2 messages:

    * every one of them echoes ``u``  -> ``(commit, u)``
    * at least one echoes ``u``       -> ``(adopt, u)``
    * none                            -> ``(vacillate, own value)``

    Coherence over adopt & commit: a commit is backed by ``n - t`` echoes
    of ``u``; any other process's quorum intersects those echoers in
    ``>= n - 2t >= 1`` processes, so it sees an echo of ``u`` too — and two
    different values cannot both be echoed, since each needs a strict
    system-majority of honest exchange-1 reports.
    """

    def invoke(self, api, value, round_no):
        quorum = api.n - api.t

        yield Broadcast(("report", round_no, value))
        reports = yield Receive(
            count=quorum,
            predicate=lambda e: isinstance(e.payload, tuple)
            and e.payload[:2] == ("report", round_no),
        )
        tally = Counter(e.payload[2] for e in reports)
        echoed = next((v for v, c in tally.items() if c > api.n / 2), None)

        yield Broadcast(("echo", round_no, echoed))
        echoes = yield Receive(
            count=quorum,
            predicate=lambda e: isinstance(e.payload, tuple)
            and e.payload[:2] == ("echo", round_no),
        )
        backing = [e.payload[2] for e in echoes if e.payload[2] is not None]
        if backing:
            u = backing[0]
            if len(backing) == quorum:
                return COMMIT, u
            return ADOPT, u
        return VACILLATE, value


class LeaningCoinReconciliator(ReconciliatorObject):
    """A coin with a globally agreed lean toward 1.

    Still a valid reconciliator — every value keeps non-zero probability,
    so some round eventually turns unanimous — but the shared bias makes
    vacillators converge in ~1/bias rounds instead of ~2^n.  (Validity
    caveat: with a binary domain and mixed inputs both values are inputs;
    do not use a leaning coin whose favourite might not be anyone's input.)
    """

    def __init__(self, bias: float = 0.8):
        if not 0.0 < bias < 1.0:
            raise ValueError("bias must be in (0, 1)")
        self.bias = bias

    def invoke(self, api, confidence, value, round_no):
        flipped = 1 if api.rng.random() < self.bias else 0
        yield Annotate("leaning_coin", (round_no, flipped))
        return flipped


def main() -> None:
    n, t = 6, 2
    init_values = [0, 1, 0, 1, 0, 1]
    processes = [
        VacTemplateConsensus(StrictEchoVac(), LeaningCoinReconciliator())
        for _ in range(n)
    ]
    runtime = AsyncRuntime(processes, init_values=init_values, t=t, seed=2024)
    result = runtime.run()

    print(f"inputs:    {init_values}")
    print(f"decisions: {result.decisions}")
    check_agreement(result.decisions)
    rounds = check_all_rounds(result.trace, "vac")
    print(f"homemade VAC passed coherence/convergence checks over {rounds} rounds")


if __name__ == "__main__":
    main()
